#include "core/prompt_augmenter.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace gp {
namespace {

PromptAugmenterConfig SmallConfig(int capacity = 3) {
  PromptAugmenterConfig config;
  config.cache_capacity = capacity;
  return config;
}

Tensor QueryBatch(std::vector<std::vector<float>> rows) {
  const int cols = static_cast<int>(rows[0].size());
  Tensor t = Tensor::Zeros(static_cast<int>(rows.size()), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    for (int c = 0; c < cols; ++c) {
      t.at(static_cast<int>(r), c) = rows[r][c];
    }
  }
  return t;
}

TEST(PromptAugmenterTest, StartsEmpty) {
  PromptAugmenter augmenter(SmallConfig(), 1);
  const auto cached = augmenter.GetCachedPrompts(2);
  EXPECT_EQ(cached.embeddings.rows(), 0);
  EXPECT_TRUE(cached.labels.empty());
}

TEST(PromptAugmenterTest, InsertsMostConfidentQuery) {
  PromptAugmenter augmenter(SmallConfig(), 2);
  Tensor batch = QueryBatch({{1, 0}, {0, 1}, {0.5, 0.5}});
  augmenter.ObserveQueries(batch, {0, 1, 0}, {0.5f, 0.9f, 0.6f},
                           /*max_inserts=*/1);
  const auto cached = augmenter.GetCachedPrompts(2);
  ASSERT_EQ(cached.embeddings.rows(), 1);
  EXPECT_EQ(cached.labels[0], 1);  // the 0.9-confidence query
  EXPECT_EQ(cached.embeddings.at(0, 1), 1.0f);
}

TEST(PromptAugmenterTest, RespectsMaxInserts) {
  PromptAugmenter augmenter(SmallConfig(10), 3);
  Tensor batch = QueryBatch({{1, 0}, {0, 1}, {1, 1}});
  augmenter.ObserveQueries(batch, {0, 1, 0}, {0.9f, 0.8f, 0.7f}, 2);
  EXPECT_EQ(augmenter.cache().size(), 2);
}

TEST(PromptAugmenterTest, ConfidenceGateBlocksLowConfidence) {
  auto config = SmallConfig();
  config.min_confidence = 0.8f;
  PromptAugmenter augmenter(config, 4);
  Tensor batch = QueryBatch({{1, 0}});
  augmenter.ObserveQueries(batch, {0}, {0.5f}, 1);
  EXPECT_TRUE(augmenter.cache().empty());
  augmenter.ObserveQueries(batch, {0}, {0.95f}, 1);
  EXPECT_EQ(augmenter.cache().size(), 1);
}

TEST(PromptAugmenterTest, CapacityBoundsCache) {
  PromptAugmenter augmenter(SmallConfig(3), 5);
  for (int i = 0; i < 10; ++i) {
    Tensor batch = QueryBatch({{static_cast<float>(i), 1}});
    augmenter.ObserveQueries(batch, {i % 2}, {0.9f}, 1);
  }
  EXPECT_EQ(augmenter.cache().size(), 3);
}

TEST(PromptAugmenterTest, SimilarEntriesGainFrequencyAndSurvive) {
  PromptAugmenter augmenter(SmallConfig(2), 6);
  // Seed two cache entries at distinct poles.
  augmenter.ObserveQueries(QueryBatch({{1, 0}}), {0}, {0.9f}, 1);
  augmenter.ObserveQueries(QueryBatch({{0, 1}}), {1}, {0.9f}, 1);
  // Stream of queries near pole (1, 0): its entry keeps getting hit.
  auto config2 = SmallConfig(2);
  config2.top_k_hits = 1;
  for (int i = 0; i < 4; ++i) {
    augmenter.ObserveQueries(QueryBatch({{0.9f, 0.1f}}), {0}, {0.3f}, 0);
  }
  // Now insert new entries; the (0,1) entry has never been touched beyond
  // insertion, so it is evicted before the hot (1,0) one.
  augmenter.ObserveQueries(QueryBatch({{0.8f, 0.2f}}), {0}, {0.9f}, 1);
  const auto cached = augmenter.GetCachedPrompts(2);
  bool has_hot_pole = false;
  for (int r = 0; r < cached.embeddings.rows(); ++r) {
    if (cached.embeddings.at(r, 0) == 1.0f) has_hot_pole = true;
  }
  EXPECT_TRUE(has_hot_pole);
}

TEST(PromptAugmenterTest, RandomPseudoLabelModeStillInserts) {
  auto config = SmallConfig();
  config.random_pseudo_labels = true;
  config.min_confidence = 0.0f;  // random mode: no confidence gate
  PromptAugmenter augmenter(config, 7);
  Tensor batch = QueryBatch({{1, 0}, {0, 1}, {1, 1}, {0, 0}});
  augmenter.ObserveQueries(batch, {0, 1, 0, 1}, {0.9f, 0.1f, 0.5f, 0.3f}, 2);
  EXPECT_EQ(augmenter.cache().size(), 2);
}

TEST(PromptAugmenterTest, ResetClearsCache) {
  PromptAugmenter augmenter(SmallConfig(), 8);
  augmenter.ObserveQueries(QueryBatch({{1, 0}}), {0}, {0.9f}, 1);
  EXPECT_EQ(augmenter.cache().size(), 1);
  augmenter.Reset();
  EXPECT_TRUE(augmenter.cache().empty());
}

TEST(PromptAugmenterTest, CachedPromptsCarryPseudoLabels) {
  PromptAugmenter augmenter(SmallConfig(), 9);
  augmenter.ObserveQueries(QueryBatch({{1, 2}}), {3}, {0.9f}, 1);
  const auto cached = augmenter.GetCachedPrompts(2);
  ASSERT_EQ(cached.labels.size(), 1u);
  EXPECT_EQ(cached.labels[0], 3);
  EXPECT_EQ(cached.embeddings.at(0, 0), 1.0f);
  EXPECT_EQ(cached.embeddings.at(0, 1), 2.0f);
}

// ---- retrieval-index mirroring (core/prompt_index.h) --------------------

TEST(PromptAugmenterTest, IndexMirrorsCacheThroughInsertAndEviction) {
  auto config = SmallConfig(/*capacity=*/3);
  config.index.mode = IndexMode::kIvf;
  config.index.min_points = 1;  // shard as soon as geometry allows
  PromptAugmenter augmenter(config, 10);

  augmenter.ObserveQueries(QueryBatch({{1, 0}, {0, 1}, {1, 1}}),
                           {0, 1, 0}, {0.9f, 0.8f, 0.7f}, 3);
  EXPECT_EQ(augmenter.index().size(), augmenter.cache().size());

  // Two more inserts overflow capacity 3: the cache evicts victims it
  // never names, and the index must track the survivors exactly.
  augmenter.ObserveQueries(QueryBatch({{2, 0}, {0, 2}}), {0, 1},
                           {0.95f, 0.85f}, 2);
  EXPECT_EQ(augmenter.cache().size(), 3);
  EXPECT_EQ(augmenter.index().size(), 3);
  std::vector<int64_t> cached_ids;
  for (const auto& [id, entry] : augmenter.cache().Entries()) {
    cached_ids.push_back(id);
  }
  std::sort(cached_ids.begin(), cached_ids.end());
  EXPECT_EQ(augmenter.index().Ids(), cached_ids);
}

TEST(PromptAugmenterTest, DefaultIndexStaysExactAtPaperCacheSizes) {
  PromptAugmenter augmenter(SmallConfig(), 11);  // default auto index
  augmenter.ObserveQueries(QueryBatch({{1, 0}, {0, 1}, {1, 1}}),
                           {0, 1, 0}, {0.9f, 0.8f, 0.7f}, 3);
  // c = 3 (Fig. 5's optimum) is far below min_points: exact scan, no IVF.
  EXPECT_FALSE(augmenter.index().ivf());
}

TEST(PromptAugmenterTest, LargeCacheShardsAndStillTouchesEntries) {
  auto config = SmallConfig(/*capacity=*/256);
  config.index.mode = IndexMode::kIvf;
  config.index.min_points = 32;
  config.index.nlist = 4;
  PromptAugmenter augmenter(config, 12);

  // Fill with four well-separated clusters so sharding is meaningful.
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;
  std::vector<float> conf;
  for (int i = 0; i < 128; ++i) {
    const int c = i % 4;
    const float cx = (c % 2 == 0) ? 10.0f : -10.0f;
    const float cy = (c / 2 == 0) ? 10.0f : -10.0f;
    rows.push_back({cx + 0.01f * static_cast<float>(i),
                    cy - 0.01f * static_cast<float>(i)});
    labels.push_back(c);
    conf.push_back(0.9f);
  }
  augmenter.ObserveQueries(QueryBatch(rows), labels, conf, 128);
  EXPECT_EQ(augmenter.cache().size(), 128);
  EXPECT_EQ(augmenter.index().size(), 128);
  EXPECT_TRUE(augmenter.index().ivf());

  // A follow-up batch must still bump frequencies through the narrowed
  // (probed) scan without touching every entry.
  augmenter.ObserveQueries(QueryBatch({{10, 10}}), {0}, {0.0f}, 0);
  EXPECT_EQ(augmenter.index().size(), augmenter.cache().size());
}

TEST(PromptAugmenterTest, EvictPoisonedAlsoErasesFromIndex) {
  auto config = SmallConfig(/*capacity=*/4);
  PromptAugmenter augmenter(config, 13);
  augmenter.ObserveQueries(QueryBatch({{1, 0}, {0, 1}}), {0, 1},
                           {0.9f, 0.8f}, 2);
  ASSERT_EQ(augmenter.index().size(), 2);
  // Poison one entry out-of-band, the way fault injection does.
  const auto entries = augmenter.cache().Entries();
  augmenter.mutable_cache().MutableEntry(entries[0].first)->pseudo_label = 99;
  EXPECT_EQ(augmenter.EvictPoisoned(/*dim=*/2, /*num_classes=*/2), 1);
  EXPECT_EQ(augmenter.index().size(), 1);
  EXPECT_EQ(augmenter.cache().size(), 1);
}

TEST(PromptAugmenterTest, ResetAndRebuildKeepIndexInSync) {
  PromptAugmenter augmenter(SmallConfig(), 14);
  augmenter.ObserveQueries(QueryBatch({{1, 0}, {0, 1}}), {0, 1},
                           {0.9f, 0.8f}, 2);
  EXPECT_EQ(augmenter.index().size(), 2);
  augmenter.Reset();
  EXPECT_TRUE(augmenter.cache().empty());
  EXPECT_EQ(augmenter.index().size(), 0);

  augmenter.ObserveQueries(QueryBatch({{1, 1}}), {0}, {0.9f}, 1);
  // Out-of-band cache surgery desyncs the index; RebuildIndex re-derives.
  augmenter.mutable_cache().Clear();
  augmenter.RebuildIndex();
  EXPECT_EQ(augmenter.index().size(), 0);
}

}  // namespace
}  // namespace gp
