#include "core/prompt_augmenter.h"

#include <gtest/gtest.h>

namespace gp {
namespace {

PromptAugmenterConfig SmallConfig(int capacity = 3) {
  PromptAugmenterConfig config;
  config.cache_capacity = capacity;
  return config;
}

Tensor QueryBatch(std::vector<std::vector<float>> rows) {
  const int cols = static_cast<int>(rows[0].size());
  Tensor t = Tensor::Zeros(static_cast<int>(rows.size()), cols);
  for (size_t r = 0; r < rows.size(); ++r) {
    for (int c = 0; c < cols; ++c) {
      t.at(static_cast<int>(r), c) = rows[r][c];
    }
  }
  return t;
}

TEST(PromptAugmenterTest, StartsEmpty) {
  PromptAugmenter augmenter(SmallConfig(), 1);
  const auto cached = augmenter.GetCachedPrompts(2);
  EXPECT_EQ(cached.embeddings.rows(), 0);
  EXPECT_TRUE(cached.labels.empty());
}

TEST(PromptAugmenterTest, InsertsMostConfidentQuery) {
  PromptAugmenter augmenter(SmallConfig(), 2);
  Tensor batch = QueryBatch({{1, 0}, {0, 1}, {0.5, 0.5}});
  augmenter.ObserveQueries(batch, {0, 1, 0}, {0.5f, 0.9f, 0.6f},
                           /*max_inserts=*/1);
  const auto cached = augmenter.GetCachedPrompts(2);
  ASSERT_EQ(cached.embeddings.rows(), 1);
  EXPECT_EQ(cached.labels[0], 1);  // the 0.9-confidence query
  EXPECT_EQ(cached.embeddings.at(0, 1), 1.0f);
}

TEST(PromptAugmenterTest, RespectsMaxInserts) {
  PromptAugmenter augmenter(SmallConfig(10), 3);
  Tensor batch = QueryBatch({{1, 0}, {0, 1}, {1, 1}});
  augmenter.ObserveQueries(batch, {0, 1, 0}, {0.9f, 0.8f, 0.7f}, 2);
  EXPECT_EQ(augmenter.cache().size(), 2);
}

TEST(PromptAugmenterTest, ConfidenceGateBlocksLowConfidence) {
  auto config = SmallConfig();
  config.min_confidence = 0.8f;
  PromptAugmenter augmenter(config, 4);
  Tensor batch = QueryBatch({{1, 0}});
  augmenter.ObserveQueries(batch, {0}, {0.5f}, 1);
  EXPECT_TRUE(augmenter.cache().empty());
  augmenter.ObserveQueries(batch, {0}, {0.95f}, 1);
  EXPECT_EQ(augmenter.cache().size(), 1);
}

TEST(PromptAugmenterTest, CapacityBoundsCache) {
  PromptAugmenter augmenter(SmallConfig(3), 5);
  for (int i = 0; i < 10; ++i) {
    Tensor batch = QueryBatch({{static_cast<float>(i), 1}});
    augmenter.ObserveQueries(batch, {i % 2}, {0.9f}, 1);
  }
  EXPECT_EQ(augmenter.cache().size(), 3);
}

TEST(PromptAugmenterTest, SimilarEntriesGainFrequencyAndSurvive) {
  PromptAugmenter augmenter(SmallConfig(2), 6);
  // Seed two cache entries at distinct poles.
  augmenter.ObserveQueries(QueryBatch({{1, 0}}), {0}, {0.9f}, 1);
  augmenter.ObserveQueries(QueryBatch({{0, 1}}), {1}, {0.9f}, 1);
  // Stream of queries near pole (1, 0): its entry keeps getting hit.
  auto config2 = SmallConfig(2);
  config2.top_k_hits = 1;
  for (int i = 0; i < 4; ++i) {
    augmenter.ObserveQueries(QueryBatch({{0.9f, 0.1f}}), {0}, {0.3f}, 0);
  }
  // Now insert new entries; the (0,1) entry has never been touched beyond
  // insertion, so it is evicted before the hot (1,0) one.
  augmenter.ObserveQueries(QueryBatch({{0.8f, 0.2f}}), {0}, {0.9f}, 1);
  const auto cached = augmenter.GetCachedPrompts(2);
  bool has_hot_pole = false;
  for (int r = 0; r < cached.embeddings.rows(); ++r) {
    if (cached.embeddings.at(r, 0) == 1.0f) has_hot_pole = true;
  }
  EXPECT_TRUE(has_hot_pole);
}

TEST(PromptAugmenterTest, RandomPseudoLabelModeStillInserts) {
  auto config = SmallConfig();
  config.random_pseudo_labels = true;
  config.min_confidence = 0.0f;  // random mode: no confidence gate
  PromptAugmenter augmenter(config, 7);
  Tensor batch = QueryBatch({{1, 0}, {0, 1}, {1, 1}, {0, 0}});
  augmenter.ObserveQueries(batch, {0, 1, 0, 1}, {0.9f, 0.1f, 0.5f, 0.3f}, 2);
  EXPECT_EQ(augmenter.cache().size(), 2);
}

TEST(PromptAugmenterTest, ResetClearsCache) {
  PromptAugmenter augmenter(SmallConfig(), 8);
  augmenter.ObserveQueries(QueryBatch({{1, 0}}), {0}, {0.9f}, 1);
  EXPECT_EQ(augmenter.cache().size(), 1);
  augmenter.Reset();
  EXPECT_TRUE(augmenter.cache().empty());
}

TEST(PromptAugmenterTest, CachedPromptsCarryPseudoLabels) {
  PromptAugmenter augmenter(SmallConfig(), 9);
  augmenter.ObserveQueries(QueryBatch({{1, 2}}), {3}, {0.9f}, 1);
  const auto cached = augmenter.GetCachedPrompts(2);
  ASSERT_EQ(cached.labels.size(), 1u);
  EXPECT_EQ(cached.labels[0], 3);
  EXPECT_EQ(cached.embeddings.at(0, 0), 1.0f);
  EXPECT_EQ(cached.embeddings.at(0, 1), 2.0f);
}

}  // namespace
}  // namespace gp
