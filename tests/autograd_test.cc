// Property tests: every differentiable op's analytic gradient must match a
// central-difference numeric gradient.

#include "tensor/autograd.h"

#include <cmath>
#include <functional>
#include <string>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace gp {
namespace {

// A scalar-valued function of one input tensor.
using ScalarFn = std::function<Tensor(const Tensor&)>;

// Reduces an op output to a scalar with fixed pseudo-random coefficients so
// every output entry contributes a distinct weight to the loss.
Tensor WeightedSum(const Tensor& out, uint64_t seed = 99) {
  Rng rng(seed);
  Tensor coeff = Tensor::Randn(out.rows(), out.cols(), &rng);
  return SumAll(Mul(out, coeff));
}

// Checks d(fn)/dx against central differences at every coordinate.
void CheckGradient(const ScalarFn& fn, Tensor x, float tolerance = 2e-2f,
                   float eps = 1e-3f) {
  x.set_requires_grad(true);
  Tensor loss = fn(x);
  ASSERT_EQ(loss.size(), 1);
  Backward(loss);
  const std::vector<float> analytic = x.grad();
  ASSERT_EQ(analytic.size(), x.data().size());

  for (size_t i = 0; i < x.data().size(); ++i) {
    const float original = x.mutable_data()[i];
    x.mutable_data()[i] = original + eps;
    const float up = fn(x).item();
    x.mutable_data()[i] = original - eps;
    const float down = fn(x).item();
    x.mutable_data()[i] = original;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tolerance * std::max(1.0f, std::abs(numeric)))
        << "coordinate " << i;
  }
}

Tensor SmallInput(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn(rows, cols, &rng);
}

struct OpCase {
  std::string name;
  ScalarFn fn;
  int rows;
  int cols;
};

class GradCheckTest : public ::testing::TestWithParam<OpCase> {};

TEST_P(GradCheckTest, AnalyticMatchesNumeric) {
  const OpCase& c = GetParam();
  CheckGradient(c.fn, SmallInput(c.rows, c.cols, 7));
}

std::vector<OpCase> MakeCases() {
  std::vector<OpCase> cases;
  auto other23 = SmallInput(2, 3, 11);
  auto row = SmallInput(1, 3, 12);
  auto col = SmallInput(2, 1, 13);
  auto scalar = SmallInput(1, 1, 14);
  auto mat34 = SmallInput(3, 4, 15);

  cases.push_back({"Add", [=](const Tensor& x) {
                     return WeightedSum(Add(x, other23));
                   }, 2, 3});
  cases.push_back({"AddRowBroadcast", [=](const Tensor& x) {
                     return WeightedSum(Add(x, row));
                   }, 2, 3});
  cases.push_back({"AddColBroadcast", [=](const Tensor& x) {
                     return WeightedSum(Add(x, col));
                   }, 2, 3});
  cases.push_back({"AddScalarBroadcast", [=](const Tensor& x) {
                     return WeightedSum(Add(x, scalar));
                   }, 2, 3});
  cases.push_back({"SubSecondArg", [=](const Tensor& x) {
                     return WeightedSum(Sub(other23, x));
                   }, 2, 3});
  cases.push_back({"Mul", [=](const Tensor& x) {
                     return WeightedSum(Mul(x, other23));
                   }, 2, 3});
  cases.push_back({"MulRowBroadcastSecond", [=](const Tensor& x) {
                     return WeightedSum(Mul(other23, x));
                   }, 1, 3});
  cases.push_back({"DivFirst", [=](const Tensor& x) {
                     return WeightedSum(Div(x, AddScalar(Square(other23),
                                                         1.0f)));
                   }, 2, 3});
  cases.push_back({"DivSecond", [=](const Tensor& x) {
                     return WeightedSum(
                         Div(other23, AddScalar(Square(x), 1.0f)));
                   }, 2, 3});
  cases.push_back({"Neg", [](const Tensor& x) {
                     return WeightedSum(Neg(x));
                   }, 2, 3});
  cases.push_back({"Scale", [](const Tensor& x) {
                     return WeightedSum(Scale(x, -2.5f));
                   }, 2, 3});
  cases.push_back({"MatMulLeft", [=](const Tensor& x) {
                     return WeightedSum(MatMul(x, mat34));
                   }, 2, 3});
  cases.push_back({"MatMulRight", [=](const Tensor& x) {
                     return WeightedSum(MatMul(other23, x));
                   }, 3, 4});
  cases.push_back({"Transpose", [](const Tensor& x) {
                     return WeightedSum(Transpose(x));
                   }, 2, 3});
  cases.push_back({"Sigmoid", [](const Tensor& x) {
                     return WeightedSum(Sigmoid(x));
                   }, 2, 3});
  cases.push_back({"Tanh", [](const Tensor& x) {
                     return WeightedSum(Tanh(x));
                   }, 2, 3});
  cases.push_back({"Exp", [](const Tensor& x) {
                     return WeightedSum(Exp(x));
                   }, 2, 3});
  cases.push_back({"LogOfPositive", [](const Tensor& x) {
                     return WeightedSum(Log(AddScalar(Square(x), 1.0f)));
                   }, 2, 3});
  cases.push_back({"Square", [](const Tensor& x) {
                     return WeightedSum(Square(x));
                   }, 2, 3});
  cases.push_back({"LeakyRelu", [](const Tensor& x) {
                     return WeightedSum(LeakyRelu(AddScalar(x, 0.3f), 0.1f));
                   }, 2, 3});
  cases.push_back({"Softmax", [](const Tensor& x) {
                     return WeightedSum(Softmax(x));
                   }, 2, 4});
  cases.push_back({"LogSoftmax", [](const Tensor& x) {
                     return WeightedSum(LogSoftmax(x));
                   }, 2, 4});
  cases.push_back({"CrossEntropy", [](const Tensor& x) {
                     return CrossEntropyWithLogits(x, {1, 0});
                   }, 2, 3});
  cases.push_back({"ConcatColsFirst", [=](const Tensor& x) {
                     return WeightedSum(ConcatCols(x, other23));
                   }, 2, 3});
  cases.push_back({"ConcatRows", [=](const Tensor& x) {
                     return WeightedSum(ConcatRows({x, other23, x}));
                   }, 2, 3});
  cases.push_back({"GatherRows", [](const Tensor& x) {
                     return WeightedSum(GatherRows(x, {1, 0, 1, 1}));
                   }, 3, 2});
  cases.push_back({"ScatterAddRows", [](const Tensor& x) {
                     return WeightedSum(ScatterAddRows(x, {0, 2, 0}, 3));
                   }, 3, 2});
  cases.push_back({"SliceRows", [](const Tensor& x) {
                     return WeightedSum(SliceRows(x, 1, 2));
                   }, 4, 2});
  cases.push_back({"RowScaleData", [=](const Tensor& x) {
                     return WeightedSum(RowScale(x, col));
                   }, 2, 3});
  cases.push_back({"RowScaleWeights", [=](const Tensor& x) {
                     return WeightedSum(RowScale(other23, x));
                   }, 2, 1});
  cases.push_back({"SumAll", [](const Tensor& x) {
                     return SumAll(x);
                   }, 2, 3});
  cases.push_back({"MeanAll", [](const Tensor& x) {
                     return MeanAll(x);
                   }, 2, 3});
  cases.push_back({"SumRows", [](const Tensor& x) {
                     return WeightedSum(SumRows(x));
                   }, 3, 2});
  cases.push_back({"MeanRows", [](const Tensor& x) {
                     return WeightedSum(MeanRows(x));
                   }, 3, 2});
  cases.push_back({"SumCols", [](const Tensor& x) {
                     return WeightedSum(SumCols(x));
                   }, 3, 2});
  cases.push_back({"RowL2Normalize", [](const Tensor& x) {
                     return WeightedSum(RowL2Normalize(AddScalar(x, 2.0f)));
                   }, 2, 3});
  cases.push_back({"SegmentSoftmax", [](const Tensor& x) {
                     return WeightedSum(SegmentSoftmax(x, {0, 0, 1, 1, 1}, 2));
                   }, 5, 1});
  cases.push_back({"SegmentMeanRows", [](const Tensor& x) {
                     return WeightedSum(
                         SegmentMeanRows(x, {0, 1, 0, 2}, 3));
                   }, 4, 2});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOps, GradCheckTest,
                         ::testing::ValuesIn(MakeCases()),
                         [](const ::testing::TestParamInfo<OpCase>& info) {
                           return info.param.name;
                         });

TEST(AutogradTest, GradientsAccumulateAcrossBackwardCalls) {
  Tensor x = Tensor::FromData(1, 1, {2.0f}, true);
  Tensor loss = Square(x);
  Backward(loss);
  EXPECT_NEAR(x.grad()[0], 4.0f, 1e-5f);
  Tensor loss2 = Square(x);
  Backward(loss2);
  EXPECT_NEAR(x.grad()[0], 8.0f, 1e-5f);  // accumulated
  x.ZeroGrad();
  EXPECT_EQ(x.grad()[0], 0.0f);
}

TEST(AutogradTest, DiamondGraphSumsBothPaths) {
  // y = x*x + x*x through two distinct Mul nodes sharing x.
  Tensor x = Tensor::FromData(1, 1, {3.0f}, true);
  Tensor a = Mul(x, x);
  Tensor b = Mul(x, x);
  Backward(Add(a, b));
  EXPECT_NEAR(x.grad()[0], 12.0f, 1e-4f);
}

TEST(AutogradTest, ReusedNodeBackpropagatesOnce) {
  // z = (x + 1); loss = sum(z * z). dz/dx path must not double-count the
  // topological visit.
  Tensor x = Tensor::FromData(1, 1, {2.0f}, true);
  Tensor z = AddScalar(x, 1.0f);
  Backward(Mul(z, z));
  EXPECT_NEAR(x.grad()[0], 6.0f, 1e-4f);
}

TEST(AutogradTest, NoGradGuardSkipsGraph) {
  Tensor x = Tensor::FromData(1, 1, {2.0f}, true);
  NoGradGuard guard;
  Tensor y = Square(x);
  EXPECT_FALSE(y.requires_grad());
  EXPECT_TRUE(y.impl()->parents.empty());
}

TEST(AutogradTest, NoGradGuardRestores) {
  Tensor x = Tensor::FromData(1, 1, {2.0f}, true);
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradEnabled());
  }
  EXPECT_TRUE(GradEnabled());
  Tensor y = Square(x);
  EXPECT_TRUE(y.requires_grad());
}

TEST(AutogradTest, NonRequiringLeafGetsNoGradient) {
  Tensor x = Tensor::FromData(1, 1, {2.0f}, true);
  Tensor frozen = Tensor::FromData(1, 1, {5.0f}, false);
  Backward(Mul(x, frozen));
  EXPECT_TRUE(frozen.grad().empty());
  EXPECT_NEAR(x.grad()[0], 5.0f, 1e-5f);
}

TEST(AutogradTest, BackwardRequiresScalar) {
  Tensor x = Tensor::FromData(1, 2, {1.0f, 2.0f}, true);
  EXPECT_DEATH(Backward(x), "Check failed");
}

TEST(AutogradTest, DeepChainGradient) {
  // 60 chained AddScalar ops: gradient should be exactly 1.
  Tensor x = Tensor::FromData(1, 1, {0.0f}, true);
  Tensor y = x;
  for (int i = 0; i < 60; ++i) y = AddScalar(y, 0.5f);
  Backward(y);
  EXPECT_NEAR(x.grad()[0], 1.0f, 1e-5f);
}

}  // namespace
}  // namespace gp
