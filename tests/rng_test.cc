#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace gp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, UniformFloatInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.UniformFloat();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

TEST(RngTest, NormalHasApproximatelyUnitMoments) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.1);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(29);
  const auto sample = rng.SampleWithoutReplacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<int> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (int v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 50);
  }
}

TEST(RngTest, SampleWholePopulation) {
  Rng rng(31);
  auto sample = rng.SampleWithoutReplacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(37);
  Rng child = a.Fork();
  // The child stream should not simply replay the parent.
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace gp
