// Framing-layer hardening tests: every malformed wire sequence must come
// back as a typed error (and the right one), never a crash or a garbage
// frame.

#include "serve/frame.h"

#include <gtest/gtest.h>

#include <string>

#include "serve/byte_stream.h"

namespace gp {
namespace {

Frame TestFrame(const std::string& payload,
                FrameType type = FrameType::kEvalRequest) {
  Frame f;
  f.type = type;
  f.payload = payload;
  return f;
}

TEST(FrameTest, RoundTrip) {
  StringByteStream stream(EncodeFrame(TestFrame("hello frames")));
  auto frame = ReadFrame(&stream);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kEvalRequest);
  EXPECT_EQ(frame->payload, "hello frames");
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  StringByteStream stream(EncodeFrame(TestFrame("", FrameType::kShutdown)));
  auto frame = ReadFrame(&stream);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, FrameType::kShutdown);
  EXPECT_TRUE(frame->payload.empty());
}

TEST(FrameTest, BackToBackFramesThenCleanEof) {
  std::string wire = EncodeFrame(TestFrame("one"));
  wire += EncodeFrame(TestFrame("two"));
  StringByteStream stream(wire);
  auto first = ReadFrame(&stream);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->payload, "one");
  auto second = ReadFrame(&stream);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->payload, "two");
  // Stream exhausted exactly at a frame boundary: polite close, not loss.
  auto eof = ReadFrame(&stream);
  EXPECT_EQ(eof.status().code(), StatusCode::kOutOfRange);
}

TEST(FrameTest, TornMidHeaderIsDataLoss) {
  const std::string wire = EncodeFrame(TestFrame("payload"));
  for (size_t cut : {size_t{1}, size_t{4}, size_t{11}}) {
    StringByteStream stream(wire.substr(0, cut));
    auto frame = ReadFrame(&stream);
    EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss) << "cut=" << cut;
    EXPECT_NE(frame.status().message().find("mid-header"),
              std::string::npos);
  }
}

TEST(FrameTest, TornMidPayloadIsDataLoss) {
  const std::string wire = EncodeFrame(TestFrame("a longer payload body"));
  // Header intact (12 bytes), payload cut short.
  StringByteStream stream(wire.substr(0, 12 + 5));
  auto frame = ReadFrame(&stream);
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(frame.status().message().find("mid-payload"), std::string::npos);
}

TEST(FrameTest, TornMidFooterIsDataLoss) {
  const std::string wire = EncodeFrame(TestFrame("body"));
  StringByteStream stream(wire.substr(0, wire.size() - 2));
  auto frame = ReadFrame(&stream);
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(frame.status().message().find("mid-footer"), std::string::npos);
}

TEST(FrameTest, CorruptedPayloadFailsCrc) {
  std::string wire = EncodeFrame(TestFrame("checksummed bytes"));
  wire[14] ^= 0x40;  // flip a payload bit
  StringByteStream stream(wire);
  auto frame = ReadFrame(&stream);
  EXPECT_EQ(frame.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(frame.status().message().find("checksum"), std::string::npos);
}

TEST(FrameTest, CorruptedTypeFieldFailsCrc) {
  // The CRC covers the header too, so even a flipped type bit is caught.
  std::string wire = EncodeFrame(TestFrame("x"));
  wire[4] ^= 0x01;
  StringByteStream stream(wire);
  EXPECT_EQ(ReadFrame(&stream).status().code(), StatusCode::kDataLoss);
}

TEST(FrameTest, BadMagicIsInvalidArgument) {
  std::string wire = EncodeFrame(TestFrame("x"));
  wire[0] = 'Z';
  StringByteStream stream(wire);
  auto frame = ReadFrame(&stream);
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, OversizedFrameRejectedBeforePayloadRead) {
  // Hand-build a header claiming a 2 MiB payload; no payload follows, but
  // the reader must reject on the length field alone.
  std::string wire;
  const uint32_t magic = kFrameMagic;
  const uint32_t type = 1;
  const uint32_t len = 2u << 20;
  wire.append(reinterpret_cast<const char*>(&magic), 4);
  wire.append(reinterpret_cast<const char*>(&type), 4);
  wire.append(reinterpret_cast<const char*>(&len), 4);
  StringByteStream stream(wire);
  auto frame = ReadFrame(&stream, /*max_frame_bytes=*/1u << 20);
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(frame.status().message().find("oversized"), std::string::npos);
}

TEST(FrameTest, TornByteByByteNeverCrashes) {
  // Exhaustive truncation sweep: every prefix of a valid frame must decode
  // to a typed error (or, for the full wire, the frame itself).
  const std::string wire = EncodeFrame(TestFrame("sweep me"));
  for (size_t cut = 0; cut < wire.size(); ++cut) {
    StringByteStream stream(wire.substr(0, cut));
    auto frame = ReadFrame(&stream);
    ASSERT_FALSE(frame.ok()) << "cut=" << cut;
    const StatusCode code = frame.status().code();
    EXPECT_TRUE(code == StatusCode::kOutOfRange ||
                code == StatusCode::kDataLoss)
        << "cut=" << cut << ": " << frame.status().ToString();
  }
  StringByteStream full(wire);
  EXPECT_TRUE(ReadFrame(&full).ok());
}

}  // namespace
}  // namespace gp
