// End-to-end fault-tolerance tests: inject faults into the in-context
// evaluation pipeline and assert that every one is either recovered (a
// DegradationStats counter increments) or surfaced as a typed Status —
// never a crash or a NaN accuracy.

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/graph_prompter.h"
#include "util/fault.h"

namespace gp {
namespace {

GraphPrompterConfig TinyConfig(int feature_dim, uint64_t seed) {
  GraphPrompterConfig config = FullGraphPrompterConfig(feature_dim, seed);
  config.embedding_dim = 16;
  config.recon_hidden = 16;
  config.selection_hidden = 16;
  config.sampler.max_nodes = 10;
  return config;
}

EvalConfig TinyEval() {
  EvalConfig config;
  config.ways = 3;
  config.shots = 2;
  config.candidates_per_class = 5;
  config.num_queries = 24;
  config.trials = 2;
  config.seed = 11;
  return config;
}

void ExpectFiniteAccuracy(const EvalResult& result) {
  EXPECT_TRUE(std::isfinite(result.accuracy_percent.mean));
  EXPECT_GE(result.accuracy_percent.mean, 0.0);
  EXPECT_LE(result.accuracy_percent.mean, 100.0);
  for (double acc : result.trial_accuracy_percent) {
    EXPECT_TRUE(std::isfinite(acc));
  }
}

TEST(FaultRecoveryTest, CleanRunHasNoDegradationEvents) {
  DatasetBundle ds = MakeArxivSim(0.3, 12);
  GraphPrompterModel model(TinyConfig(ds.graph.feature_dim(), 13));
  const auto result = EvaluateInContext(model, ds, TinyEval());
  EXPECT_EQ(result.degradation.TotalEvents(), 0);
  EXPECT_EQ(result.degradation.ToString(), "no degradation events\n");
}

TEST(FaultRecoveryTest, ValidationPathsAreBitwiseInvisibleWhenClean) {
  // The robustness machinery (finiteness scans, dedup pass, cache
  // validation) must not perturb a healthy run: results with the ladder
  // compiled in must equal the seed pipeline's exactly.
  DatasetBundle ds = MakeArxivSim(0.3, 12);
  GraphPrompterModel model(TinyConfig(ds.graph.feature_dim(), 13));
  const auto a = EvaluateInContext(model, ds, TinyEval());
  const auto b = EvaluateInContext(model, ds, TinyEval());
  ASSERT_EQ(a.trial_accuracy_percent.size(), b.trial_accuracy_percent.size());
  for (size_t i = 0; i < a.trial_accuracy_percent.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trial_accuracy_percent[i],
                     b.trial_accuracy_percent[i]);
  }
}

TEST(FaultRecoveryTest, RecoversFromNonFiniteEmbeddings) {
  DatasetBundle ds = MakeArxivSim(0.3, 12);
  GraphPrompterModel model(TinyConfig(ds.graph.feature_dim(), 13));

  FaultSpec spec;
  spec.embed_nan_prob = 0.3;
  spec.seed = 5;
  ScopedFaultInjection scoped(spec);

  const auto result = EvaluateInContext(model, ds, TinyEval());
  ExpectFiniteAccuracy(result);
  // Candidate rows get quarantined and/or query rows sanitized.
  EXPECT_GT(result.degradation.quarantined_prompts +
                result.degradation.sanitized_queries,
            0);
}

TEST(FaultRecoveryTest, SurvivesTotalEmbeddingCorruption) {
  // Every embedded row damaged: the similarity term is unusable, so the
  // selector must step down the ladder (selection-layer-only over the
  // sanitized embeddings, or random if that is also unusable) and still
  // produce predictions.
  DatasetBundle ds = MakeArxivSim(0.3, 12);
  GraphPrompterModel model(TinyConfig(ds.graph.feature_dim(), 13));

  FaultSpec spec;
  spec.embed_nan_prob = 1.0;
  spec.seed = 5;
  ScopedFaultInjection scoped(spec);

  const auto result = EvaluateInContext(model, ds, TinyEval());
  ExpectFiniteAccuracy(result);
  EXPECT_GT(result.degradation.quarantined_prompts, 0);
  EXPECT_GT(result.degradation.sanitized_queries, 0);
  EXPECT_GT(result.degradation.selector_selection_only +
                result.degradation.selector_random,
            0);
}

TEST(FaultRecoveryTest, SelectorFallsToRandomWithoutSelectionLayer) {
  // With the selection layer ablated, total embedding corruption leaves no
  // healthy scoring term at all — the bottom (random) rung must catch it.
  DatasetBundle ds = MakeArxivSim(0.3, 12);
  GraphPrompterConfig config = TinyConfig(ds.graph.feature_dim(), 13);
  config.use_selection_layer = false;
  GraphPrompterModel model(config);

  FaultSpec spec;
  spec.embed_nan_prob = 1.0;
  spec.seed = 5;
  ScopedFaultInjection scoped(spec);

  const auto result = EvaluateInContext(model, ds, TinyEval());
  ExpectFiniteAccuracy(result);
  EXPECT_GT(result.degradation.selector_random, 0);
}

TEST(FaultRecoveryTest, RecoversFromPromptDropAndDuplication) {
  DatasetBundle ds = MakeArxivSim(0.3, 12);
  GraphPrompterModel model(TinyConfig(ds.graph.feature_dim(), 13));

  FaultSpec spec;
  spec.prompt_drop_prob = 0.5;
  spec.prompt_dup_prob = 0.5;
  spec.seed = 5;
  ScopedFaultInjection scoped(spec);

  const auto result = EvaluateInContext(model, ds, TinyEval());
  ExpectFiniteAccuracy(result);
  // Duplicates removed and/or dropped classes accounted for.
  EXPECT_GT(result.degradation.deduped_prompts +
                result.degradation.missing_class_prompts,
            0);
}

TEST(FaultRecoveryTest, EvictsPoisonedCacheEntries) {
  DatasetBundle ds = MakeArxivSim(0.3, 12);
  GraphPrompterConfig config = TinyConfig(ds.graph.feature_dim(), 13);
  // Make cache insertion easy so there is something to poison.
  config.augmenter.min_confidence = 0.0f;
  GraphPrompterModel model(config);

  FaultSpec spec;
  spec.cache_poison_prob = 1.0;
  spec.seed = 5;
  ScopedFaultInjection scoped(spec);

  EvalConfig eval = TinyEval();
  eval.trials = 1;
  const auto result = EvaluateInContext(model, ds, eval);
  ExpectFiniteAccuracy(result);
  EXPECT_GT(result.degradation.augmenter_evicted_poisoned, 0);
  // Poisoning every batch trips the circuit breaker.
  EXPECT_GT(result.degradation.augmenter_stage_skips, 0);
}

TEST(FaultRecoveryTest, SlowBatchesAreCounted) {
  DatasetBundle ds = MakeArxivSim(0.3, 12);
  GraphPrompterModel model(TinyConfig(ds.graph.feature_dim(), 13));

  FaultSpec spec;
  spec.slow_every = 2;
  spec.slow_ms = 0;  // count the fault without actually sleeping
  ScopedFaultInjection scoped(spec);

  const auto result = EvaluateInContext(model, ds, TinyEval());
  ExpectFiniteAccuracy(result);
  EXPECT_GT(result.degradation.slow_batches, 0);
}

TEST(FaultRecoveryTest, CombinedFaultsStillYieldFiniteAccuracy) {
  DatasetBundle ds = MakeArxivSim(0.3, 12);
  GraphPrompterModel model(TinyConfig(ds.graph.feature_dim(), 13));

  FaultSpec spec;
  spec.embed_nan_prob = 0.25;
  spec.prompt_drop_prob = 0.25;
  spec.prompt_dup_prob = 0.25;
  spec.cache_poison_prob = 0.5;
  spec.slow_every = 4;
  spec.slow_ms = 0;
  spec.seed = 17;
  ScopedFaultInjection scoped(spec);

  const auto result = EvaluateInContext(model, ds, TinyEval());
  ExpectFiniteAccuracy(result);
  EXPECT_GT(result.degradation.TotalEvents(), 0);
  EXPECT_NE(result.degradation.ToString(), "no degradation events\n");
}

TEST(FaultRecoveryTest, FaultRunsAreDeterministicForSeed) {
  DatasetBundle ds = MakeArxivSim(0.3, 12);
  GraphPrompterModel model(TinyConfig(ds.graph.feature_dim(), 13));

  FaultSpec spec;
  spec.embed_nan_prob = 0.3;
  spec.prompt_drop_prob = 0.3;
  spec.seed = 21;

  std::vector<double> first;
  int64_t first_events = 0;
  {
    ScopedFaultInjection scoped(spec);
    const auto result = EvaluateInContext(model, ds, TinyEval());
    first = result.trial_accuracy_percent;
    first_events = result.degradation.TotalEvents();
  }
  {
    ScopedFaultInjection scoped(spec);
    const auto result = EvaluateInContext(model, ds, TinyEval());
    EXPECT_EQ(result.trial_accuracy_percent, first);
    EXPECT_EQ(result.degradation.TotalEvents(), first_events);
  }
}

TEST(FaultRecoveryTest, ConfigValidationRejectsBadConfigs) {
  GraphPrompterConfig config = TinyConfig(8, 1);
  EXPECT_TRUE(Validate(config).ok());

  GraphPrompterConfig bad = config;
  bad.embedding_dim = 0;
  EXPECT_EQ(Validate(bad).code(), StatusCode::kInvalidArgument);

  bad = config;
  bad.score_temperature = std::numeric_limits<float>::quiet_NaN();
  EXPECT_EQ(Validate(bad).code(), StatusCode::kInvalidArgument);

  bad = config;
  bad.sampler.max_nodes = 0;
  EXPECT_EQ(Validate(bad).code(), StatusCode::kInvalidArgument);

  bad = config;
  bad.cache_inserts_per_batch = -1;
  EXPECT_EQ(Validate(bad).code(), StatusCode::kInvalidArgument);
}

TEST(FaultRecoveryTest, GraphAndEpisodeValidateOnCleanData) {
  DatasetBundle ds = MakeArxivSim(0.3, 12);
  EXPECT_TRUE(ds.graph.Validate().ok());

  EpisodeSampler sampler(&ds);
  EpisodeConfig episode;
  episode.ways = 3;
  episode.candidates_per_class = 5;
  episode.num_queries = 10;
  Rng rng(3);
  auto task = sampler.Sample(episode, &rng);
  ASSERT_TRUE(task.ok());
  EXPECT_TRUE(task->Validate(ds.graph.num_nodes()).ok());
}

TEST(FaultRecoveryTest, DegradationStatsMergeAndPrint) {
  DegradationStats a, b;
  a.quarantined_prompts = 2;
  b.quarantined_prompts = 3;
  b.selector_random = 1;
  a.Merge(b);
  EXPECT_EQ(a.quarantined_prompts, 5);
  EXPECT_EQ(a.selector_random, 1);
  EXPECT_EQ(a.TotalEvents(), 6);
  const std::string text = a.ToString();
  EXPECT_NE(text.find("quarantined_prompts: 5"), std::string::npos);
  EXPECT_NE(text.find("selector_random: 1"), std::string::npos);
  EXPECT_EQ(text.find("sanitized_queries"), std::string::npos);
}

}  // namespace
}  // namespace gp
