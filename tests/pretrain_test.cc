#include "core/pretrain.h"

#include <cmath>

#include <gtest/gtest.h>

namespace gp {
namespace {

GraphPrompterConfig TinyModelConfig(int feature_dim) {
  GraphPrompterConfig config;
  config.feature_dim = feature_dim;
  config.embedding_dim = 16;
  config.recon_hidden = 16;
  config.selection_hidden = 16;
  config.sampler.max_nodes = 10;
  config.seed = 1;
  return config;
}

PretrainConfig TinyPretrainConfig(int steps) {
  PretrainConfig config;
  config.steps = steps;
  config.ways = 3;
  config.shots = 2;
  config.queries_per_task = 3;
  config.log_every = std::max(1, steps / 4);
  return config;
}

TEST(PretrainTest, LossDecreasesOnNodeDataset) {
  DatasetBundle ds = MakeMagSim(0.08, 3);
  GraphPrompterModel model(TinyModelConfig(ds.graph.feature_dim()));
  const auto curves = Pretrain(&model, ds, TinyPretrainConfig(60));
  ASSERT_GE(curves.loss.size(), 2u);
  EXPECT_LT(curves.loss.back(), curves.loss.front());
}

TEST(PretrainTest, AccuracyImprovesAboveChance) {
  DatasetBundle ds = MakeMagSim(0.08, 4);
  GraphPrompterModel model(TinyModelConfig(ds.graph.feature_dim()));
  const auto curves = Pretrain(&model, ds, TinyPretrainConfig(120));
  // 3-way chance is 33%; the tail of training should beat it clearly.
  EXPECT_GT(curves.train_accuracy.back(), 40.0);
}

TEST(PretrainTest, WorksOnEdgeDataset) {
  DatasetBundle ds = MakeWikiSim(0.1, 5);
  GraphPrompterModel model(TinyModelConfig(ds.graph.feature_dim()));
  const auto curves = Pretrain(&model, ds, TinyPretrainConfig(40));
  EXPECT_FALSE(curves.loss.empty());
  for (double l : curves.loss) EXPECT_TRUE(std::isfinite(l));
}

TEST(PretrainTest, CurvesAlignWithLogEvery) {
  DatasetBundle ds = MakeMagSim(0.06, 6);
  GraphPrompterModel model(TinyModelConfig(ds.graph.feature_dim()));
  PretrainConfig config = TinyPretrainConfig(20);
  config.log_every = 5;
  const auto curves = Pretrain(&model, ds, config);
  ASSERT_EQ(curves.step.size(), 4u);
  EXPECT_EQ(curves.step.front(), 5);
  EXPECT_EQ(curves.step.back(), 20);
  EXPECT_EQ(curves.loss.size(), curves.step.size());
  EXPECT_EQ(curves.train_accuracy.size(), curves.step.size());
}

TEST(PretrainTest, SingleObjectiveVariantsRun) {
  DatasetBundle ds = MakeMagSim(0.06, 7);
  for (const bool multi_task : {true, false}) {
    GraphPrompterModel model(TinyModelConfig(ds.graph.feature_dim()));
    PretrainConfig config = TinyPretrainConfig(10);
    config.multi_task = multi_task;
    config.neighbor_matching = !multi_task;
    const auto curves = Pretrain(&model, ds, config);
    EXPECT_FALSE(curves.loss.empty());
  }
}

TEST(PretrainTest, ParametersActuallyChange) {
  DatasetBundle ds = MakeMagSim(0.06, 8);
  GraphPrompterModel model(TinyModelConfig(ds.graph.feature_dim()));
  std::vector<float> before;
  for (const auto& p : model.Parameters()) {
    before.insert(before.end(), p.data().begin(), p.data().end());
  }
  Pretrain(&model, ds, TinyPretrainConfig(5));
  std::vector<float> after;
  for (const auto& p : model.Parameters()) {
    after.insert(after.end(), p.data().begin(), p.data().end());
  }
  ASSERT_EQ(before.size(), after.size());
  double total_change = 0;
  for (size_t i = 0; i < before.size(); ++i) {
    total_change += std::abs(before[i] - after[i]);
  }
  EXPECT_GT(total_change, 1e-3);
}

TEST(PretrainTest, DeterministicForSeed) {
  DatasetBundle ds = MakeMagSim(0.06, 9);
  GraphPrompterModel a(TinyModelConfig(ds.graph.feature_dim()));
  GraphPrompterModel b(TinyModelConfig(ds.graph.feature_dim()));
  const auto ca = Pretrain(&a, ds, TinyPretrainConfig(10));
  const auto cb = Pretrain(&b, ds, TinyPretrainConfig(10));
  ASSERT_EQ(ca.loss.size(), cb.loss.size());
  for (size_t i = 0; i < ca.loss.size(); ++i) {
    EXPECT_DOUBLE_EQ(ca.loss[i], cb.loss[i]);
  }
}

}  // namespace
}  // namespace gp
