#include "tensor/tensor.h"

#include <cmath>

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace gp {
namespace {

TEST(TensorTest, ZerosShapeAndValues) {
  Tensor t = Tensor::Zeros(2, 3);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  for (int r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_EQ(t.at(r, c), 0.0f);
  }
}

TEST(TensorTest, FromDataRoundTrips) {
  Tensor t = Tensor::FromData(2, 2, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, OneHot) {
  Tensor t = Tensor::OneHot({2, 0}, 3);
  EXPECT_EQ(t.at(0, 2), 1.0f);
  EXPECT_EQ(t.at(0, 0), 0.0f);
  EXPECT_EQ(t.at(1, 0), 1.0f);
}

TEST(TensorTest, XavierWithinLimit) {
  Rng rng(3);
  Tensor t = Tensor::Xavier(10, 20, &rng);
  const float limit = std::sqrt(6.0f / 30.0f);
  for (float v : t.data()) {
    EXPECT_LE(std::abs(v), limit + 1e-6f);
  }
}

TEST(TensorTest, RandnStatistics) {
  Rng rng(5);
  Tensor t = Tensor::Randn(100, 100, &rng, 2.0f);
  double sum = 0, sq = 0;
  for (float v : t.data()) {
    sum += v;
    sq += static_cast<double>(v) * v;
  }
  EXPECT_NEAR(sum / t.size(), 0.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / t.size()), 2.0, 0.05);
}

TEST(TensorTest, DetachSharesNoHistory) {
  Tensor a = Tensor::FromData(1, 2, {1, 2}, /*requires_grad=*/true);
  Tensor b = Add(a, a);
  Tensor d = b.Detach();
  EXPECT_FALSE(d.requires_grad());
  EXPECT_TRUE(d.impl()->parents.empty());
  EXPECT_EQ(d.at(0, 0), 2.0f);
  // Mutating the detached copy leaves the original untouched.
  d.at(0, 0) = 99.0f;
  EXPECT_EQ(b.at(0, 0), 2.0f);
}

TEST(TensorTest, CloneKeepsRequiresGrad) {
  Tensor a = Tensor::FromData(1, 1, {3}, true);
  Tensor c = a.Clone();
  EXPECT_TRUE(c.requires_grad());
  EXPECT_EQ(c.item(), 3.0f);
}

TEST(TensorTest, RowExtraction) {
  Tensor t = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.Row(1), (std::vector<float>{4, 5, 6}));
}

TEST(TensorTest, NormIsFrobenius) {
  Tensor t = Tensor::FromData(1, 2, {3, 4});
  EXPECT_FLOAT_EQ(t.Norm(), 5.0f);
}

TEST(TensorTest, ItemRequiresScalar) {
  Tensor t = Tensor::FromData(1, 1, {7});
  EXPECT_EQ(t.item(), 7.0f);
  Tensor big = Tensor::Zeros(2, 2);
  EXPECT_DEATH(big.item(), "Check failed");
}

TEST(TensorTest, ToStringTruncates) {
  Tensor t = Tensor::Zeros(3, 5);
  const std::string s = t.ToString(4);
  EXPECT_NE(s.find("Tensor(3x5)"), std::string::npos);
  EXPECT_NE(s.find("..."), std::string::npos);
}

// ---------------------------------------------------------- forward values

TEST(OpsTest, AddBroadcastRow) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor row = Tensor::FromData(1, 2, {10, 20});
  Tensor out = Add(a, row);
  EXPECT_EQ(out.at(0, 0), 11.0f);
  EXPECT_EQ(out.at(1, 1), 24.0f);
}

TEST(OpsTest, AddBroadcastColAndScalar) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor col = Tensor::FromData(2, 1, {100, 200});
  Tensor out = Add(a, col);
  EXPECT_EQ(out.at(0, 1), 102.0f);
  EXPECT_EQ(out.at(1, 0), 203.0f);
  Tensor s = Tensor::FromData(1, 1, {5});
  EXPECT_EQ(Add(a, s).at(1, 1), 9.0f);
}

TEST(OpsTest, MatMulMatchesManual) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromData(3, 2, {7, 8, 9, 10, 11, 12});
  Tensor out = MatMul(a, b);
  EXPECT_EQ(out.at(0, 0), 58.0f);
  EXPECT_EQ(out.at(0, 1), 64.0f);
  EXPECT_EQ(out.at(1, 0), 139.0f);
  EXPECT_EQ(out.at(1, 1), 154.0f);
}

TEST(OpsTest, TransposeValues) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  Tensor t = Transpose(a);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.at(2, 1), 6.0f);
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, -1, 0, 1});
  Tensor s = Softmax(a);
  for (int r = 0; r < 2; ++r) {
    float total = 0;
    for (int c = 0; c < 3; ++c) total += s.at(r, c);
    EXPECT_NEAR(total, 1.0f, 1e-5f);
  }
  EXPECT_GT(s.at(0, 2), s.at(0, 0));
}

TEST(OpsTest, SoftmaxIsShiftInvariantAndStable) {
  Tensor a = Tensor::FromData(1, 2, {1000.0f, 1001.0f});
  Tensor s = Softmax(a);
  EXPECT_NEAR(s.at(0, 1), 1.0f / (1.0f + std::exp(-1.0f)), 1e-5f);
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  Tensor a = Tensor::FromData(1, 3, {0.3f, -1.2f, 2.0f});
  Tensor ls = LogSoftmax(a);
  Tensor s = Softmax(a);
  for (int c = 0; c < 3; ++c) {
    EXPECT_NEAR(ls.at(0, c), std::log(s.at(0, c)), 1e-5f);
  }
}

TEST(OpsTest, CrossEntropyOfUniformLogits) {
  Tensor logits = Tensor::Zeros(4, 5);
  Tensor loss = CrossEntropyWithLogits(logits, {0, 1, 2, 3});
  EXPECT_NEAR(loss.item(), std::log(5.0f), 1e-5f);
}

TEST(OpsTest, GatherAndScatterRoundTrip) {
  Tensor a = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor g = GatherRows(a, {2, 0, 2});
  EXPECT_EQ(g.at(0, 0), 5.0f);
  EXPECT_EQ(g.at(1, 1), 2.0f);
  Tensor s = ScatterAddRows(g, {0, 0, 1}, 2);
  EXPECT_EQ(s.at(0, 0), 6.0f);   // rows 5,6 + 1,2 -> first row 5+1
  EXPECT_EQ(s.at(0, 1), 8.0f);
  EXPECT_EQ(s.at(1, 0), 5.0f);
}

TEST(OpsTest, ConcatColsAndRows) {
  Tensor a = Tensor::FromData(2, 1, {1, 2});
  Tensor b = Tensor::FromData(2, 2, {3, 4, 5, 6});
  Tensor cc = ConcatCols(a, b);
  EXPECT_EQ(cc.cols(), 3);
  EXPECT_EQ(cc.at(1, 2), 6.0f);
  Tensor cr = ConcatRows({a, a});
  EXPECT_EQ(cr.rows(), 4);
  EXPECT_EQ(cr.at(3, 0), 2.0f);
}

TEST(OpsTest, SliceRows) {
  Tensor a = Tensor::FromData(3, 2, {1, 2, 3, 4, 5, 6});
  Tensor s = SliceRows(a, 1, 2);
  EXPECT_EQ(s.rows(), 2);
  EXPECT_EQ(s.at(0, 0), 3.0f);
  EXPECT_EQ(s.at(1, 1), 6.0f);
}

TEST(OpsTest, RowScale) {
  Tensor a = Tensor::FromData(2, 2, {1, 2, 3, 4});
  Tensor w = Tensor::FromData(2, 1, {10, 0.5});
  Tensor out = RowScale(a, w);
  EXPECT_EQ(out.at(0, 1), 20.0f);
  EXPECT_EQ(out.at(1, 0), 1.5f);
}

TEST(OpsTest, Reductions) {
  Tensor a = Tensor::FromData(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(SumAll(a).item(), 21.0f);
  EXPECT_NEAR(MeanAll(a).item(), 3.5f, 1e-6f);
  Tensor sr = SumRows(a);
  EXPECT_EQ(sr.rows(), 1);
  EXPECT_EQ(sr.at(0, 0), 5.0f);
  Tensor sc = SumCols(a);
  EXPECT_EQ(sc.cols(), 1);
  EXPECT_EQ(sc.at(1, 0), 15.0f);
  Tensor mr = MeanRows(a);
  EXPECT_NEAR(mr.at(0, 2), 4.5f, 1e-6f);
}

TEST(OpsTest, RowL2NormalizeUnitNorm) {
  Tensor a = Tensor::FromData(2, 2, {3, 4, 0, 0});
  Tensor n = RowL2Normalize(a);
  EXPECT_NEAR(n.at(0, 0), 0.6f, 1e-5f);
  EXPECT_NEAR(n.at(0, 1), 0.8f, 1e-5f);
  // Zero rows stay finite.
  EXPECT_EQ(n.at(1, 0), 0.0f);
}

TEST(OpsTest, SegmentSoftmaxPerSegment) {
  Tensor a = Tensor::FromData(4, 1, {1, 1, 2, 0});
  Tensor s = SegmentSoftmax(a, {0, 0, 1, 1}, 2);
  EXPECT_NEAR(s.at(0, 0), 0.5f, 1e-5f);
  EXPECT_NEAR(s.at(1, 0), 0.5f, 1e-5f);
  EXPECT_NEAR(s.at(2, 0) + s.at(3, 0), 1.0f, 1e-5f);
  EXPECT_GT(s.at(2, 0), s.at(3, 0));
}

TEST(OpsTest, SegmentMeanRows) {
  Tensor a = Tensor::FromData(3, 2, {1, 2, 3, 4, 10, 20});
  Tensor m = SegmentMeanRows(a, {0, 0, 1}, 3);
  EXPECT_EQ(m.at(0, 0), 2.0f);
  EXPECT_EQ(m.at(0, 1), 3.0f);
  EXPECT_EQ(m.at(1, 0), 10.0f);
  // Empty segment -> zero row.
  EXPECT_EQ(m.at(2, 0), 0.0f);
}

TEST(OpsTest, DropoutIdentityWhenEval) {
  Rng rng(1);
  Tensor a = Tensor::FromData(1, 4, {1, 2, 3, 4});
  Tensor out = Dropout(a, 0.5f, &rng, /*training=*/false);
  for (int c = 0; c < 4; ++c) EXPECT_EQ(out.at(0, c), a.at(0, c));
}

TEST(OpsTest, DropoutScalesSurvivors) {
  Rng rng(1);
  Tensor a = Tensor::Full(1, 1000, 1.0f);
  Tensor out = Dropout(a, 0.5f, &rng, /*training=*/true);
  int zeros = 0;
  for (float v : out.data()) {
    if (v == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(v, 2.0f, 1e-6f);
    }
  }
  EXPECT_NEAR(zeros / 1000.0, 0.5, 0.07);
}

TEST(OpsTest, ArgmaxAndRowMax) {
  Tensor a = Tensor::FromData(2, 3, {1, 5, 2, 9, 0, 3});
  EXPECT_EQ(ArgmaxRows(a), (std::vector<int>{1, 0}));
  EXPECT_EQ(RowMax(a), (std::vector<float>{5, 9}));
}

TEST(OpsTest, DistanceHelpers) {
  std::vector<float> a = {1, 0};
  std::vector<float> b = {0, 1};
  EXPECT_NEAR(CosineSimilarity(a, a), 1.0f, 1e-6f);
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0f, 1e-6f);
  EXPECT_NEAR(EuclideanDistance(a, b), std::sqrt(2.0f), 1e-6f);
  EXPECT_NEAR(ManhattanDistance(a, b), 2.0f, 1e-6f);
}

TEST(OpsTest, ActivationValues) {
  Tensor a = Tensor::FromData(1, 3, {-1, 0, 2});
  EXPECT_EQ(Relu(a).at(0, 0), 0.0f);
  EXPECT_EQ(Relu(a).at(0, 2), 2.0f);
  EXPECT_NEAR(LeakyRelu(a, 0.1f).at(0, 0), -0.1f, 1e-6f);
  EXPECT_NEAR(Sigmoid(a).at(0, 1), 0.5f, 1e-6f);
  EXPECT_NEAR(Tanh(a).at(0, 2), std::tanh(2.0f), 1e-6f);
  EXPECT_NEAR(Exp(a).at(0, 2), std::exp(2.0f), 1e-4f);
  EXPECT_NEAR(Square(a).at(0, 0), 1.0f, 1e-6f);
}

TEST(OpsTest, SigmoidSaturationIsFinite) {
  Tensor a = Tensor::FromData(1, 2, {-500.0f, 500.0f});
  Tensor s = Sigmoid(a);
  EXPECT_NEAR(s.at(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(s.at(0, 1), 1.0f, 1e-6f);
}

TEST(OpsTest, MismatchedShapesDie) {
  Tensor a = Tensor::Zeros(2, 3);
  Tensor b = Tensor::Zeros(3, 3);
  EXPECT_DEATH(Add(a, b), "incompatible shapes");
  EXPECT_DEATH(MatMul(a, a), "Check failed");
}

}  // namespace
}  // namespace gp
