#include "data/datasets.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "tensor/ops.h"

namespace gp {
namespace {

TEST(FeatureSpaceTest, PrototypesHaveUnitishNorm) {
  FeatureSpace space(64, 8, 1);
  Rng rng(2);
  double total_norm = 0.0;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    const auto proto = space.SamplePrototype(&rng);
    double norm = 0.0;
    for (float v : proto) norm += static_cast<double>(v) * v;
    total_norm += std::sqrt(norm);
  }
  EXPECT_NEAR(total_norm / n, 1.0, 0.35);
}

TEST(FeatureSpaceTest, SameSeedSameBasis) {
  FeatureSpace a(32, 4, 77), b(32, 4, 77);
  Rng rng_a(5), rng_b(5);
  EXPECT_EQ(a.SamplePrototype(&rng_a), b.SamplePrototype(&rng_b));
}

TEST(SyntheticNodeGraphTest, ShapeMatchesConfig) {
  NodeGraphConfig config;
  config.num_nodes = 300;
  config.num_classes = 10;
  config.feature_dim = 16;
  Graph g = MakeNodeClassificationGraph(config);
  EXPECT_EQ(g.num_nodes(), 300);
  EXPECT_EQ(g.num_node_classes(), 10);
  EXPECT_EQ(g.feature_dim(), 16);
  EXPECT_GT(g.num_edges(), 0);
}

TEST(SyntheticNodeGraphTest, ClassesAreBalanced) {
  NodeGraphConfig config;
  config.num_nodes = 400;
  config.num_classes = 8;
  Graph g = MakeNodeClassificationGraph(config);
  for (int c = 0; c < 8; ++c) {
    EXPECT_EQ(static_cast<int>(g.NodesOfClass(c).size()), 50);
  }
}

TEST(SyntheticNodeGraphTest, HomophilyAboveChance) {
  NodeGraphConfig config;
  config.num_nodes = 600;
  config.num_classes = 6;
  config.homophily = 0.8;
  config.noise_edge_fraction = 0.1;
  Graph g = MakeNodeClassificationGraph(config);
  int same = 0;
  for (const auto& e : g.edges()) {
    if (g.node_label(e.src) == g.node_label(e.dst)) ++same;
  }
  const double frac = static_cast<double>(same) / g.num_edges();
  EXPECT_GT(frac, 0.5);  // chance would be ~1/6
}

TEST(SyntheticNodeGraphTest, FeaturesClusterByClass) {
  NodeGraphConfig config;
  config.num_nodes = 200;
  config.num_classes = 4;
  config.feature_noise = 0.3;
  Graph g = MakeNodeClassificationGraph(config);
  // Mean intra-class cosine similarity should exceed inter-class.
  double intra = 0, inter = 0;
  int intra_n = 0, inter_n = 0;
  for (int i = 0; i < 100; ++i) {
    for (int j = i + 1; j < 100; ++j) {
      const float sim = CosineSimilarity(g.node_features().Row(i),
                                         g.node_features().Row(j));
      if (g.node_label(i) == g.node_label(j)) {
        intra += sim;
        ++intra_n;
      } else {
        inter += sim;
        ++inter_n;
      }
    }
  }
  EXPECT_GT(intra / intra_n, inter / inter_n + 0.1);
}

TEST(SyntheticNodeGraphTest, DeterministicForSeed) {
  NodeGraphConfig config;
  config.num_nodes = 100;
  config.num_classes = 5;
  Graph a = MakeNodeClassificationGraph(config);
  Graph b = MakeNodeClassificationGraph(config);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.node_features().data(), b.node_features().data());
}

TEST(SyntheticKgTest, ShapeMatchesConfig) {
  KnowledgeGraphConfig config;
  config.num_nodes = 300;
  config.num_relations = 20;
  config.num_clusters = 5;
  config.num_edges = 1500;
  Graph g = MakeKnowledgeGraph(config);
  EXPECT_EQ(g.num_nodes(), 300);
  EXPECT_EQ(g.num_relations(), 20);
  EXPECT_GT(g.num_edges(), 1000);
}

TEST(SyntheticKgTest, EveryRelationHasEdges) {
  KnowledgeGraphConfig config;
  config.num_nodes = 400;
  config.num_relations = 25;
  config.num_clusters = 6;
  config.num_edges = 2500;
  Graph g = MakeKnowledgeGraph(config);
  for (int r = 0; r < config.num_relations; ++r) {
    EXPECT_GT(g.EdgesOfRelation(r).size(), 0u) << "relation " << r;
  }
}

TEST(SyntheticKgTest, StructuralEdgesRespectClusterPairs) {
  KnowledgeGraphConfig config;
  config.num_nodes = 300;
  config.num_relations = 10;
  config.num_clusters = 5;
  config.num_edges = 1000;
  config.noise_edge_fraction = 0.0;
  Graph g = MakeKnowledgeGraph(config);
  // All edges of one relation connect a single (head-cluster,
  // tail-cluster) pair; node labels record the cluster.
  for (int r = 0; r < 10; ++r) {
    std::set<std::pair<int, int>> pairs;
    for (int e : g.EdgesOfRelation(r)) {
      pairs.insert({g.node_label(g.edge(e).src),
                    g.node_label(g.edge(e).dst)});
    }
    EXPECT_LE(pairs.size(), 1u) << "relation " << r;
  }
}

TEST(DatasetBundleTest, TableIIClassCounts) {
  EXPECT_EQ(MakeArxivSim(0.2).num_classes, 40);
  EXPECT_EQ(MakeConceptNetSim(0.3).num_classes, 14);
  EXPECT_EQ(MakeFb15kSim(0.3).num_classes, 200);
  EXPECT_EQ(MakeNellSim(0.3).num_classes, 291);
}

TEST(DatasetBundleTest, SplitsAreDisjointAndComplete) {
  DatasetBundle ds = MakeArxivSim(0.2);
  for (int c = 0; c < ds.num_classes; ++c) {
    std::set<int> train(ds.train_items_by_class[c].begin(),
                        ds.train_items_by_class[c].end());
    for (int item : ds.test_items_by_class[c]) {
      EXPECT_FALSE(train.count(item));
    }
    EXPECT_EQ(train.size() + ds.test_items_by_class[c].size(),
              ds.graph.NodesOfClass(c).size());
  }
}

TEST(DatasetBundleTest, LabelOfItemMatchesSplit) {
  DatasetBundle ds = MakeFb15kSim(0.25);
  for (int c = 0; c < 20; ++c) {
    for (int item : ds.train_items_by_class[c]) {
      EXPECT_EQ(ds.LabelOfItem(item), c);
    }
  }
}

TEST(DatasetBundleTest, ItemRawFeatureEdgeIsEndpointMean) {
  DatasetBundle ds = MakeConceptNetSim(0.3);
  const int edge_id = ds.train_items_by_class[0][0];
  const Edge& e = ds.graph.edge(edge_id);
  const auto feat = ds.ItemRawFeature(edge_id);
  const auto head = ds.graph.node_features().Row(e.src);
  const auto tail = ds.graph.node_features().Row(e.dst);
  for (size_t i = 0; i < feat.size(); ++i) {
    EXPECT_NEAR(feat[i], 0.5f * (head[i] + tail[i]), 1e-6f);
  }
}

TEST(DatasetBundleTest, ClassDescriptorIsTrainMean) {
  DatasetBundle ds = MakeArxivSim(0.15);
  const auto desc = ds.ClassDescriptor(3);
  std::vector<double> mean(ds.graph.feature_dim(), 0.0);
  for (int item : ds.train_items_by_class[3]) {
    const auto f = ds.ItemRawFeature(item);
    for (size_t i = 0; i < mean.size(); ++i) mean[i] += f[i];
  }
  for (size_t i = 0; i < mean.size(); ++i) {
    mean[i] /= ds.train_items_by_class[3].size();
    EXPECT_NEAR(desc[i], mean[i], 1e-4f);
  }
}

TEST(SyntheticNodeGraphTest, TemporalDriftShiftsLateNodes) {
  NodeGraphConfig config;
  config.num_nodes = 400;
  config.num_classes = 4;
  config.feature_noise = 0.0;  // isolate the drift component
  config.temporal_drift = 2.0;
  Graph g = MakeNodeClassificationGraph(config);
  // Mean feature of the earliest vs latest nodes differs by ~ the drift.
  std::vector<double> early(g.feature_dim(), 0.0), late(g.feature_dim(), 0.0);
  for (int v = 0; v < 50; ++v) {
    const auto fe = g.node_features().Row(v);
    const auto fl = g.node_features().Row(g.num_nodes() - 1 - v);
    for (int d = 0; d < g.feature_dim(); ++d) {
      early[d] += fe[d] / 50;
      late[d] += fl[d] / 50;
    }
  }
  double shift = 0.0;
  for (int d = 0; d < g.feature_dim(); ++d) {
    shift += (late[d] - early[d]) * (late[d] - early[d]);
  }
  // Expected || drift * (recency_late - recency_early) || ~ 2.0 * 0.875.
  EXPECT_GT(std::sqrt(shift), 1.0);
}

TEST(SyntheticNodeGraphTest, ZeroDriftMeansNoShift) {
  NodeGraphConfig config;
  config.num_nodes = 200;
  config.num_classes = 4;
  config.feature_noise = 0.0;
  config.temporal_drift = 0.0;
  Graph g = MakeNodeClassificationGraph(config);
  // Same-class nodes have identical features regardless of id.
  const auto& cls0 = g.NodesOfClass(0);
  const auto a = g.node_features().Row(cls0.front());
  const auto b = g.node_features().Row(cls0.back());
  for (size_t d = 0; d < a.size(); ++d) EXPECT_NEAR(a[d], b[d], 1e-6f);
}

TEST(DatasetBundleTest, SplitIsTemporalPerClass) {
  // Every train item's recency proxy is <= every test item's within a
  // class (the temporal split).
  DatasetBundle ds = MakeArxivSim(0.3, 21);
  for (int c = 0; c < 10; ++c) {
    int max_train = -1, min_test = 1 << 30;
    for (int item : ds.train_items_by_class[c]) {
      max_train = std::max(max_train, item);
    }
    for (int item : ds.test_items_by_class[c]) {
      min_test = std::min(min_test, item);
    }
    if (!ds.test_items_by_class[c].empty()) {
      EXPECT_LE(max_train, min_test) << "class " << c;
    }
  }
}

TEST(DatasetBundleTest, EdgeSplitIsTemporalPerRelation) {
  DatasetBundle ds = MakeConceptNetSim(0.3, 22);
  for (int r = 0; r < ds.num_classes; ++r) {
    auto recency = [&](int e) {
      return ds.graph.edge(e).src + ds.graph.edge(e).dst;
    };
    int max_train = -1, min_test = 1 << 30;
    for (int e : ds.train_items_by_class[r]) {
      max_train = std::max(max_train, recency(e));
    }
    for (int e : ds.test_items_by_class[r]) {
      min_test = std::min(min_test, recency(e));
    }
    if (!ds.test_items_by_class[r].empty()) {
      EXPECT_LE(max_train, min_test) << "relation " << r;
    }
  }
}

TEST(DatasetBundleTest, TaskTypesAreCorrect) {
  EXPECT_EQ(MakeMagSim(0.1).task, TaskType::kNodeClassification);
  EXPECT_EQ(MakeWikiSim(0.2).task, TaskType::kEdgeClassification);
  EXPECT_STREQ(TaskTypeName(TaskType::kNodeClassification),
               "node-classification");
}

}  // namespace
}  // namespace gp
