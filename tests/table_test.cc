#include "util/table.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace gp {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Method", "Acc"});
  table.AddRow({"Prodigy", "73.09"});
  table.AddRow({"GraphPrompter", "78.57"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("| Method        | Acc   |"), std::string::npos);
  EXPECT_NE(out.find("| GraphPrompter | 78.57 |"), std::string::npos);
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(10.0, 0), "10");
}

TEST(TablePrinterTest, MeanStdCell) {
  EXPECT_EQ(TablePrinter::MeanStd(78.57, 15.21), "78.57 ±15.21");
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});
  EXPECT_NE(table.ToString().find("| 1 |   |   |"), std::string::npos);
}

TEST(TablePrinterTest, WritesCsvWithEscaping) {
  TablePrinter table({"name", "value"});
  table.AddRow({"has,comma", "has\"quote"});
  const std::string path = ::testing::TempDir() + "/table_test.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "name,value");
  EXPECT_EQ(row, "\"has,comma\",\"has\"\"quote\"");
  std::remove(path.c_str());
}

TEST(TablePrinterTest, CsvToMissingDirectoryFails) {
  TablePrinter table({"a"});
  EXPECT_FALSE(table.WriteCsv("/nonexistent_dir_x/y.csv").ok());
}

TEST(SeriesWriterTest, WritesSeries) {
  SeriesWriter series("shots", {"prodigy", "ours"});
  series.AddPoint(1, {50.0, 55.0});
  series.AddPoint(3, {60.0, 70.0});
  const std::string path = ::testing::TempDir() + "/series_test.csv";
  ASSERT_TRUE(series.WriteCsv(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), "shots,prodigy,ours\n1,50,55\n3,60,70\n");
  std::remove(path.c_str());
}

TEST(SeriesWriterTest, ToStringRendersTable) {
  SeriesWriter series("x", {"y"});
  series.AddPoint(2, {0.5});
  const std::string out = series.ToString();
  EXPECT_NE(out.find("x"), std::string::npos);
  EXPECT_NE(out.find("0.500"), std::string::npos);
}

}  // namespace
}  // namespace gp
