// SIMD dispatch correctness: AVX2 distance kernels vs the scalar
// bitwise-pinned reference, the GEMM panel's bitwise-identity contract,
// the quantized candidate-pass kernels, and the CosineFromParts relative
// degenerate-norm guard (DESIGN.md §10).

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "core/distance.h"
#include "core/quantizer.h"
#include "tensor/ops.h"
#include "util/cpuid.h"
#include "util/rng.h"

namespace gp {
namespace {

// Every test restores the process dispatch level it found: the suite's
// other binaries assume the level is constant for the process lifetime.
class SimdKernelsTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = ActiveSimdLevel(); }
  void TearDown() override { SetSimdLevel(saved_); }
  SimdLevel saved_ = SimdLevel::kScalar;
};

std::vector<float> RandomVec(Rng* rng, int n, float scale = 1.0f) {
  std::vector<float> v(n);
  for (int i = 0; i < n; ++i) v[i] = rng->Normal(0.0f, scale);
  return v;
}

// Sizes that exercise full 16-float blocks, the 8-float half-block, and
// every scalar-tail length.
const int kSizes[] = {1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 100, 257};

TEST_F(SimdKernelsTest, ParseSimdLevelNames) {
  EXPECT_EQ(ParseSimdLevel("off").value(), SimdLevel::kScalar);
  EXPECT_EQ(ParseSimdLevel("scalar").value(), SimdLevel::kScalar);
  EXPECT_EQ(ParseSimdLevel("avx2").value(), SimdLevel::kAvx2);
  EXPECT_EQ(ParseSimdLevel("auto").value(), DetectedSimdLevel());
  EXPECT_FALSE(ParseSimdLevel("sse9").ok());
}

TEST_F(SimdKernelsTest, SetSimdLevelDrivesDispatchBit) {
  SetSimdLevel(SimdLevel::kScalar);
  EXPECT_FALSE(Avx2Enabled());
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  SetSimdLevel(SimdLevel::kAvx2);  // clamped to detected
  EXPECT_EQ(Avx2Enabled(), DetectedSimdLevel() == SimdLevel::kAvx2);
}

// The --simd=off contract: with scalar forced, every kernel must equal the
// ascending-index double-accumulation loop bit for bit.
TEST_F(SimdKernelsTest, ScalarIsBitwiseAscendingIndexReference) {
  SetSimdLevel(SimdLevel::kScalar);
  Rng rng(11);
  for (int n : kSizes) {
    const std::vector<float> a = RandomVec(&rng, n);
    const std::vector<float> b = RandomVec(&rng, n);
    double dot = 0.0, na = 0.0, l2 = 0.0, l1 = 0.0;
    for (int i = 0; i < n; ++i) {
      dot += static_cast<double>(a[i]) * b[i];
      na += static_cast<double>(a[i]) * a[i];
      const double d = static_cast<double>(a[i]) - b[i];
      l2 += d * d;
      l1 += std::abs(d);
    }
    EXPECT_EQ(DotRaw(a.data(), b.data(), n), dot);
    EXPECT_EQ(SquaredNormRaw(a.data(), n), na);
    EXPECT_EQ(SquaredEuclideanRaw(a.data(), b.data(), n), l2);
    EXPECT_EQ(NegEuclideanRaw(a.data(), b.data(), n),
              -static_cast<float>(std::sqrt(l2)));
    EXPECT_EQ(NegManhattanRaw(a.data(), b.data(), n),
              -static_cast<float>(l1));
  }
}

// AVX2 distance kernels regroup the sum into 4 double lanes, so they may
// differ from scalar — but only in the last ULPs. The documented bound:
// relative error <= 4 double ULPs per accumulated term is far looser than
// reality; we pin 1e-12 relative (+1e-300 absolute for exact zeros).
TEST_F(SimdKernelsTest, Avx2MatchesScalarWithinUlps) {
  if (DetectedSimdLevel() != SimdLevel::kAvx2) {
    GTEST_SKIP() << "no AVX2 on this CPU";
  }
  Rng rng(12);
  for (int n : kSizes) {
    const std::vector<float> a = RandomVec(&rng, n);
    const std::vector<float> b = RandomVec(&rng, n);

    SetSimdLevel(SimdLevel::kScalar);
    const double dot_s = DotRaw(a.data(), b.data(), n);
    const double norm_s = SquaredNormRaw(a.data(), n);
    const double l2_s = SquaredEuclideanRaw(a.data(), b.data(), n);
    const float l1_s = NegManhattanRaw(a.data(), b.data(), n);

    SetSimdLevel(SimdLevel::kAvx2);
    const double dot_v = DotRaw(a.data(), b.data(), n);
    const double norm_v = SquaredNormRaw(a.data(), n);
    const double l2_v = SquaredEuclideanRaw(a.data(), b.data(), n);
    const float l1_v = NegManhattanRaw(a.data(), b.data(), n);

    const auto close = [](double x, double y) {
      const double scale = std::max(std::abs(x), std::abs(y));
      return std::abs(x - y) <= 1e-12 * scale + 1e-300;
    };
    EXPECT_TRUE(close(dot_s, dot_v)) << "dot n=" << n;
    EXPECT_TRUE(close(norm_s, norm_v)) << "norm n=" << n;
    EXPECT_TRUE(close(l2_s, l2_v)) << "l2 n=" << n;
    EXPECT_TRUE(close(l1_s, l1_v)) << "l1 n=" << n;
    // Norms and distances keep their sign/zero structure exactly.
    EXPECT_GE(norm_v, 0.0);
    EXPECT_GE(l2_v, 0.0);
    EXPECT_LE(l1_v, 0.0f);
  }
  // Self-distance is exactly zero in both modes (no cancellation noise).
  const std::vector<float> a = RandomVec(&rng, 64);
  SetSimdLevel(SimdLevel::kAvx2);
  EXPECT_EQ(SquaredEuclideanRaw(a.data(), a.data(), 64), 0.0);
  EXPECT_EQ(NegManhattanRaw(a.data(), a.data(), 64), 0.0f);
}

// The GEMM panel is the exception to the ULP story: its vectorization is
// elementwise (independent j-lane accumulators, explicit mul-then-add, no
// FMA contraction), so AVX2 output must be bitwise identical to scalar —
// this is what keeps the golden pins level-independent.
TEST_F(SimdKernelsTest, GemmBitwiseIdenticalAcrossLevels) {
  if (DetectedSimdLevel() != SimdLevel::kAvx2) {
    GTEST_SKIP() << "no AVX2 on this CPU";
  }
  Rng rng(13);
  // Shapes crossing the 128-col panel and 256-k block boundaries plus
  // ragged tails; dense and one-hot A to exercise both skip_zeros arms.
  const int shapes[][3] = {
      {3, 5, 7}, {2, 300, 150}, {4, 256, 128}, {1, 257, 129}, {5, 64, 200}};
  for (const auto& shape : shapes) {
    const int rows = shape[0], inner = shape[1], cols = shape[2];
    std::vector<float> a = RandomVec(&rng, rows * inner);
    const std::vector<float> b = RandomVec(&rng, inner * cols);
    for (int onehot = 0; onehot < 2; ++onehot) {
      if (onehot) {
        std::fill(a.begin(), a.end(), 0.0f);
        for (int r = 0; r < rows; ++r) {
          a[r * inner + static_cast<int>(rng.UniformInt(inner))] = 1.0f;
        }
      }
      for (const bool skip_zeros : {true, false}) {
        std::vector<float> out_scalar(rows * cols, 0.25f);
        std::vector<float> out_avx2 = out_scalar;
        SetSimdLevel(SimdLevel::kScalar);
        internal::GemmAccumulate(a.data(), b.data(), out_scalar.data(), rows,
                                 inner, cols, skip_zeros);
        SetSimdLevel(SimdLevel::kAvx2);
        internal::GemmAccumulate(a.data(), b.data(), out_avx2.data(), rows,
                                 inner, cols, skip_zeros);
        EXPECT_EQ(0, std::memcmp(out_scalar.data(), out_avx2.data(),
                                 out_scalar.size() * sizeof(float)))
            << rows << "x" << inner << "x" << cols
            << " skip_zeros=" << skip_zeros << " onehot=" << onehot;
      }
    }
  }
}

// Quantized candidate-pass kernels accumulate in float (they only rank
// candidates ahead of an exact re-rank), so the AVX2-vs-scalar bound is
// looser: relative 1e-4.
TEST_F(SimdKernelsTest, QuantizedKernelsMatchScalar) {
  if (DetectedSimdLevel() != SimdLevel::kAvx2) {
    GTEST_SKIP() << "no AVX2 on this CPU";
  }
  Rng rng(14);
  for (int n : kSizes) {
    std::vector<uint8_t> code(n);
    for (int i = 0; i < n; ++i) {
      code[i] = static_cast<uint8_t>(rng.UniformInt(256));
    }
    const std::vector<float> qs = RandomVec(&rng, n, 0.1f);
    const std::vector<float> r = RandomVec(&rng, n);
    std::vector<float> step(n);
    for (int i = 0; i < n; ++i) step[i] = rng.UniformFloat() * 0.01f;

    const float dot_s = QuantizedDotRawScalar(code.data(), qs.data(), n);
    const float l2_s =
        QuantizedNegL2RawScalar(code.data(), r.data(), step.data(), n);
    const float l1_s =
        QuantizedNegL1RawScalar(code.data(), r.data(), step.data(), n);
    const float dot_v = simd::QuantizedDotRawAvx2(code.data(), qs.data(), n);
    const float l2_v =
        simd::QuantizedNegL2RawAvx2(code.data(), r.data(), step.data(), n);
    const float l1_v =
        simd::QuantizedNegL1RawAvx2(code.data(), r.data(), step.data(), n);

    const auto close = [](float x, float y) {
      const float scale = std::max(std::abs(x), std::abs(y));
      return std::abs(x - y) <= 1e-4f * scale + 1e-6f;
    };
    EXPECT_TRUE(close(dot_s, dot_v)) << "qdot n=" << n;
    EXPECT_TRUE(close(l2_s, l2_v)) << "ql2 n=" << n;
    EXPECT_TRUE(close(l1_s, l1_v)) << "ql1 n=" << n;
  }
}

// Regression for the relative degenerate-norm guard (satellite fix): the
// old absolute `denom < 1e-12` rule let a near-zero-norm row (pure
// quantization noise) return a full-magnitude cosine, and wrongly zeroed
// legitimately tiny same-scale pairs.
TEST(CosineFromPartsTest, CosineFromPartsRelativeGuard) {
  // Noise-scale row against a unit query: the noise direction carries no
  // significance — must be exactly 0, whatever the dot's sign.
  EXPECT_EQ(CosineFromParts(1e-9, 1e-9, 1.0), 0.0f);
  EXPECT_EQ(CosineFromParts(-1e-9, 1e-9, 1.0), 0.0f);
  // A legitimately tiny pair at the same scale keeps its true cosine (the
  // old absolute cutoff zeroed it: denom 1e-14 < 1e-12).
  EXPECT_NEAR(CosineFromParts(1e-14, 1e-7, 1e-7), 1.0f, 1e-6f);
  EXPECT_NEAR(CosineFromParts(-1e-14, 1e-7, 1e-7), -1.0f, 1e-6f);
  // Exact zeros and underflowing denominators are still guarded.
  EXPECT_EQ(CosineFromParts(0.0, 0.0, 1.0), 0.0f);
  EXPECT_EQ(CosineFromParts(0.0, 0.0, 0.0), 0.0f);
  EXPECT_EQ(CosineFromParts(1e-300, 1e-200, 1e-200), 0.0f);
  // Ordinary pairs are unchanged.
  EXPECT_FLOAT_EQ(CosineFromParts(0.5, 1.0, 1.0), 0.5f);
  EXPECT_FLOAT_EQ(CosineFromParts(2.0, 1.0, 4.0), 0.5f);
  // Poisoned norms propagate NaN for the degradation ladder.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(std::isnan(CosineFromParts(1.0, nan, 1.0)));
  EXPECT_TRUE(std::isnan(CosineFromParts(1.0, 1.0, nan)));
}

}  // namespace
}  // namespace gp
