#include "core/kmeans.h"

#include <set>

#include <gtest/gtest.h>

#include "core/knn_retrieval.h"

namespace gp {
namespace {

// Three well-separated blobs in 2-D.
Tensor MakeBlobs(int per_blob, Rng* rng) {
  Tensor points = Tensor::Zeros(3 * per_blob, 2);
  const float centers[3][2] = {{0, 0}, {10, 0}, {0, 10}};
  for (int b = 0; b < 3; ++b) {
    for (int i = 0; i < per_blob; ++i) {
      const int row = b * per_blob + i;
      points.at(row, 0) = centers[b][0] + rng->Normal() * 0.3f;
      points.at(row, 1) = centers[b][1] + rng->Normal() * 0.3f;
    }
  }
  return points;
}

TEST(KMeansTest, RecoversWellSeparatedBlobs) {
  Rng rng(1);
  Tensor points = MakeBlobs(15, &rng);
  KMeansConfig config;
  config.clusters = 3;
  Rng kmeans_rng(2);
  const auto result = RunKMeans(points, config, &kmeans_rng);
  // Every blob maps to exactly one cluster.
  for (int b = 0; b < 3; ++b) {
    std::set<int> clusters;
    for (int i = 0; i < 15; ++i) clusters.insert(result.assignment[b * 15 + i]);
    EXPECT_EQ(clusters.size(), 1u) << "blob " << b;
  }
  // And blobs map to distinct clusters.
  std::set<int> blob_clusters = {result.assignment[0], result.assignment[15],
                                 result.assignment[30]};
  EXPECT_EQ(blob_clusters.size(), 3u);
}

TEST(KMeansTest, InertiaIsLowForTightClusters) {
  Rng rng(3);
  Tensor points = MakeBlobs(10, &rng);
  KMeansConfig config;
  config.clusters = 3;
  Rng kmeans_rng(4);
  const auto result = RunKMeans(points, config, &kmeans_rng);
  // Tight blobs: inertia per point well below inter-blob distance.
  EXPECT_LT(result.inertia / points.rows(), 1.0);
}

TEST(KMeansTest, SingleCluster) {
  Rng rng(5);
  Tensor points = Tensor::Randn(10, 3, &rng);
  KMeansConfig config;
  config.clusters = 1;
  Rng kmeans_rng(6);
  const auto result = RunKMeans(points, config, &kmeans_rng);
  for (int a : result.assignment) EXPECT_EQ(a, 0);
  // Centroid = mean of all points.
  for (int c = 0; c < 3; ++c) {
    double mean = 0;
    for (int i = 0; i < 10; ++i) mean += points.at(i, c);
    EXPECT_NEAR(result.centroids.at(0, c), mean / 10, 1e-4);
  }
}

TEST(KMeansTest, AsManyClustersAsPoints) {
  Rng rng(7);
  Tensor points = MakeBlobs(1, &rng);  // 3 points
  KMeansConfig config;
  config.clusters = 3;
  Rng kmeans_rng(8);
  const auto result = RunKMeans(points, config, &kmeans_rng);
  std::set<int> clusters(result.assignment.begin(), result.assignment.end());
  EXPECT_EQ(clusters.size(), 3u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-6);
}

TEST(KMeansTest, DeterministicGivenRngState) {
  Rng rng(9);
  Tensor points = Tensor::Randn(30, 4, &rng);
  KMeansConfig config;
  config.clusters = 4;
  Rng a(10), b(10);
  const auto ra = RunKMeans(points, config, &a);
  const auto rb = RunKMeans(points, config, &b);
  EXPECT_EQ(ra.assignment, rb.assignment);
  EXPECT_DOUBLE_EQ(ra.inertia, rb.inertia);
}

TEST(KMeansTest, IdenticalPointsDoNotCrash) {
  Tensor points = Tensor::Full(8, 2, 1.0f);
  KMeansConfig config;
  config.clusters = 3;
  Rng rng(11);
  const auto result = RunKMeans(points, config, &rng);
  EXPECT_EQ(static_cast<int>(result.assignment.size()), 8);
  EXPECT_NEAR(result.inertia, 0.0, 1e-6);
}

// ------------------------------------------------ clustering-based selector

TEST(ClusteringSelectorTest, SelectsKPerClassAndFiltersOutliers) {
  // Same fixture as the kNN test: outlier candidates per class.
  Tensor prompts = Tensor::FromData(6, 2,
                                    {1.0f, 0.0f, 0.9f, 0.1f, -1.0f, 0.0f,
                                     0.0f, 1.0f, 0.1f, 0.9f, 0.0f, -1.0f});
  std::vector<int> labels = {0, 0, 0, 1, 1, 1};
  Rng rng(12);
  // Plenty of queries clustered near the two poles.
  Tensor queries = Tensor::Zeros(12, 2);
  for (int q = 0; q < 12; ++q) {
    const bool pole0 = q % 2 == 0;
    queries.at(q, 0) = (pole0 ? 1.0f : 0.1f) + rng.Normal() * 0.05f;
    queries.at(q, 1) = (pole0 ? 0.1f : 1.0f) + rng.Normal() * 0.05f;
  }
  KnnConfig config;
  config.shots = 2;
  const auto sel = SelectPromptsByClustering(prompts, Tensor(), labels,
                                             queries, Tensor(), 2, config,
                                             &rng);
  ASSERT_EQ(sel.selected.size(), 4u);
  for (int p : sel.selected) {
    EXPECT_NE(p, 2);
    EXPECT_NE(p, 5);
  }
}

TEST(ClusteringSelectorTest, FallsBackWithFewQueries) {
  Tensor prompts = Tensor::FromData(2, 2, {1, 0, 0, 1});
  std::vector<int> labels = {0, 1};
  Tensor queries = Tensor::FromData(1, 2, {1.0f, 0.0f});
  KnnConfig config;
  config.shots = 3;  // more clusters than queries -> kNN fallback
  Rng rng(13);
  const auto sel = SelectPromptsByClustering(prompts, Tensor(), labels,
                                             queries, Tensor(), 2, config,
                                             &rng);
  EXPECT_EQ(sel.selected.size(), 2u);
}

TEST(ClusteringSelectorTest, SelectedAreDistinctWithinClass) {
  Rng rng(14);
  Tensor prompts = Tensor::Randn(20, 4, &rng);
  std::vector<int> labels(20);
  for (int i = 0; i < 20; ++i) labels[i] = i % 2;
  Tensor queries = Tensor::Randn(15, 4, &rng);
  KnnConfig config;
  config.shots = 3;
  const auto sel = SelectPromptsByClustering(prompts, Tensor(), labels,
                                             queries, Tensor(), 2, config,
                                             &rng);
  std::set<int> unique(sel.selected.begin(), sel.selected.end());
  EXPECT_EQ(unique.size(), sel.selected.size());
  EXPECT_EQ(sel.selected.size(), 6u);
}

TEST(ClusteringSelectorTest, SelectorKindNames) {
  EXPECT_STREQ(SelectorKindName(SelectorKind::kKnnVoting), "knn-voting");
  EXPECT_STREQ(SelectorKindName(SelectorKind::kClustering),
               "kmeans-clustering");
}

}  // namespace
}  // namespace gp
