// Property tests for the sharded IVF prompt index (core/prompt_index.h).
//
// The two contractual properties (DESIGN.md "Approximation contract"):
//   1. Probing every shard (nprobe == nlist) is bitwise identical to brute
//      force — same selected ids, same vote totals, same hit counts.
//   2. At the default nprobe on clusterable data, recall@k stays >= 0.95.
// Plus the degradation edges: P < nlist, P == 0, and auto mode below
// min_points must all fall back to exact search instead of building
// degenerate (empty/singleton) shards.

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/knn_retrieval.h"
#include "core/prompt_index.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace gp {
namespace {

// Mixture-of-Gaussians embeddings: `clusters` centers with intra-cluster
// noise well below the center separation, so nearest-neighbor structure is
// real (pure iid-noise embeddings have no structure for IVF to exploit and
// are not the regime the index is for).
Tensor MixtureEmbeddings(int rows, int dim, int clusters, uint64_t seed,
                         std::vector<int>* assignment = nullptr) {
  Rng rng(seed);
  Tensor centers = Tensor::Randn(clusters, dim, &rng, 4.0f);
  Tensor out = Tensor::Zeros(rows, dim);
  for (int r = 0; r < rows; ++r) {
    const int c = r % clusters;
    if (assignment != nullptr) assignment->push_back(c);
    for (int j = 0; j < dim; ++j) {
      out.at(r, j) = centers.at(c, j) + rng.Normal(0.0f, 0.5f);
    }
  }
  return out;
}

PromptIndexOptions IvfOptions(int nlist, int nprobe) {
  PromptIndexOptions options;
  options.mode = IndexMode::kIvf;
  options.nlist = nlist;
  options.nprobe = nprobe;
  options.min_points = 1;
  return options;
}

// ---- bitwise identity at nprobe == nlist --------------------------------

TEST(PromptIndexTest, FullProbeIsBitwiseIdenticalToBruteForce) {
  const int num_prompts = 72, num_queries = 24, dim = 16, classes = 4;
  for (uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    for (DistanceMetric metric :
         {DistanceMetric::kCosine, DistanceMetric::kEuclidean,
          DistanceMetric::kManhattan}) {
      Rng rng(seed);
      Tensor prompts = Tensor::Randn(num_prompts, dim, &rng);
      Tensor pimp = Tensor::Randn(num_prompts, 1, &rng);
      Tensor queries = Tensor::Randn(num_queries, dim, &rng);
      Tensor qimp = Tensor::Randn(num_queries, 1, &rng);
      std::vector<int> labels(num_prompts);
      for (int p = 0; p < num_prompts; ++p) labels[p] = p % classes;

      KnnConfig exact;
      exact.metric = metric;
      exact.index.mode = IndexMode::kExact;
      KnnConfig full_probe = exact;
      full_probe.index = IvfOptions(6, 6);  // probe every shard

      const KnnSelection want = SelectPrompts(prompts, pimp, labels, queries,
                                              qimp, classes, exact);
      const KnnSelection got = SelectPrompts(prompts, pimp, labels, queries,
                                             qimp, classes, full_probe);
      EXPECT_EQ(want.selected, got.selected)
          << "metric=" << DistanceMetricName(metric) << " seed=" << seed;
      ASSERT_EQ(want.votes.size(), got.votes.size());
      for (size_t p = 0; p < want.votes.size(); ++p) {
        // Bitwise: no tolerance. The IVF path must score the same pairs
        // with the same kernels in the same order.
        EXPECT_EQ(want.votes[p], got.votes[p])
            << "p=" << p << " metric=" << DistanceMetricName(metric);
      }
      EXPECT_EQ(want.hit_counts, got.hit_counts);
    }
  }
}

// ---- recall at the default nprobe ---------------------------------------

TEST(PromptIndexTest, RecallAtLeast095AtDefaultNprobe) {
  const int num_prompts = 2000, dim = 32, clusters = 16;
  const int num_queries = 64, k = 10;
  Tensor prompts = MixtureEmbeddings(num_prompts, dim, clusters, 5);
  Tensor queries = MixtureEmbeddings(num_queries, dim, clusters, 5);

  for (DistanceMetric metric :
       {DistanceMetric::kCosine, DistanceMetric::kEuclidean}) {
    PromptIndexOptions options;  // auto nlist = sqrt(P), auto nprobe
    options.mode = IndexMode::kIvf;
    options.min_points = 1;
    PromptIndex index(options, metric);
    index.Build(prompts);
    ASSERT_TRUE(index.ivf());
    ASSERT_GT(index.nlist(), index.nprobe());

    int64_t hits = 0;
    for (int q = 0; q < num_queries; ++q) {
      auto top_of = [&](const std::vector<int64_t>& pool) {
        std::vector<std::pair<float, int64_t>> scored;
        scored.reserve(pool.size());
        for (int64_t p : pool) {
          scored.emplace_back(
              EmbeddingSimilarity(prompts, static_cast<int>(p), queries, q,
                                  metric),
              p);
        }
        const int kk = std::min<int>(k, static_cast<int>(scored.size()));
        std::partial_sort(scored.begin(), scored.begin() + kk, scored.end(),
                          [](const auto& a, const auto& b) {
                            return a.first > b.first;
                          });
        std::set<int64_t> ids;
        for (int i = 0; i < kk; ++i) ids.insert(scored[i].second);
        return ids;
      };
      std::vector<int64_t> all(num_prompts);
      for (int p = 0; p < num_prompts; ++p) all[p] = p;
      const std::set<int64_t> exact_top = top_of(all);
      const float* qrow =
          queries.data().data() + static_cast<size_t>(q) * dim;
      const std::set<int64_t> ivf_top = top_of(index.Probe(qrow, dim, k));
      for (int64_t id : exact_top) hits += ivf_top.count(id);
    }
    const double recall =
        static_cast<double>(hits) / (static_cast<double>(num_queries) * k);
    EXPECT_GE(recall, 0.95) << "metric=" << DistanceMetricName(metric)
                            << " nlist=" << index.nlist()
                            << " nprobe=" << index.nprobe();
  }
}

// ---- degradation edges --------------------------------------------------

TEST(PromptIndexTest, FewerPointsThanNlistDegradesToExact) {
  Rng rng(3);
  Tensor prompts = Tensor::Randn(5, 8, &rng);
  PromptIndex index(IvfOptions(8, 2), DistanceMetric::kCosine);
  index.Build(prompts);  // P=5 < nlist=8: RunKMeans would CHECK-fail
  EXPECT_FALSE(index.ivf());
  EXPECT_EQ(index.size(), 5);
  PromptIndex::ProbeStats stats;
  const std::vector<int64_t> got =
      index.Probe(prompts.data().data(), 8, 1, &stats);
  EXPECT_EQ(got, (std::vector<int64_t>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(stats.exact);
  EXPECT_EQ(stats.shards_probed, 0);
}

TEST(PromptIndexTest, EmptyIndexProbesEmpty) {
  PromptIndex index(IvfOptions(4, 2), DistanceMetric::kEuclidean);
  index.Build(Tensor::Zeros(0, 8));
  EXPECT_FALSE(index.ivf());
  EXPECT_EQ(index.size(), 0);
  const float query[8] = {0};
  EXPECT_TRUE(index.Probe(query, 8, 3).empty());

  // An undefined tensor behaves the same as a 0-row one.
  PromptIndex undef(IvfOptions(4, 2), DistanceMetric::kEuclidean);
  undef.Build(Tensor());
  EXPECT_EQ(undef.size(), 0);
  EXPECT_TRUE(undef.Probe(query, 8, 3).empty());
}

TEST(PromptIndexTest, AutoModeStaysExactBelowMinPoints) {
  Rng rng(4);
  Tensor prompts = Tensor::Randn(100, 8, &rng);
  PromptIndexOptions options;  // defaults: kAuto, min_points = 256
  PromptIndex index(options, DistanceMetric::kCosine);
  index.Build(prompts);
  EXPECT_FALSE(index.ivf());

  Tensor big = MixtureEmbeddings(400, 8, 8, 9);
  index.Build(big);
  EXPECT_TRUE(index.ivf()) << "auto mode should shard at 400 >= 256 points";
}

TEST(PromptIndexTest, ProbeWidensUntilMinCandidates) {
  const int num_prompts = 512, dim = 16;
  Tensor prompts = MixtureEmbeddings(num_prompts, dim, 8, 17);
  PromptIndex index(IvfOptions(8, 1), DistanceMetric::kEuclidean);
  index.Build(prompts);
  ASSERT_TRUE(index.ivf());
  const float* q = prompts.data().data();
  // Asking for more candidates than one shard holds forces extra probes.
  PromptIndex::ProbeStats stats;
  const std::vector<int64_t> got =
      index.Probe(q, dim, num_prompts, &stats);
  EXPECT_EQ(static_cast<int>(got.size()), num_prompts);
  EXPECT_EQ(stats.shards_probed, index.nlist());
  EXPECT_TRUE(stats.exact);
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

// ---- dynamic maintenance ------------------------------------------------

TEST(PromptIndexTest, DynamicInsertShardsAfterThreshold) {
  const int dim = 8;
  PromptIndexOptions options;
  options.mode = IndexMode::kAuto;
  options.min_points = 64;
  options.nlist = 4;
  PromptIndex index(options, DistanceMetric::kEuclidean);

  Tensor vecs = MixtureEmbeddings(200, dim, 4, 23);
  const float* data = vecs.data().data();
  for (int i = 0; i < 63; ++i) {
    index.Insert(i, data + static_cast<size_t>(i) * dim, dim);
  }
  EXPECT_FALSE(index.ivf()) << "below min_points the index stays flat";
  for (int i = 63; i < 200; ++i) {
    index.Insert(i, data + static_cast<size_t>(i) * dim, dim);
  }
  EXPECT_TRUE(index.ivf()) << "crossing min_points shards the index";
  EXPECT_EQ(index.size(), 200);

  // Every id is findable: a full-coverage probe returns all of them.
  const std::vector<int64_t> everything =
      index.Probe(data, dim, /*min_candidates=*/200);
  EXPECT_EQ(static_cast<int>(everything.size()), 200);

  // Erasing below the threshold degrades back to the exact flat set.
  for (int i = 0; i < 150; ++i) EXPECT_TRUE(index.Erase(i));
  EXPECT_FALSE(index.Erase(0)) << "double erase reports absence";
  EXPECT_EQ(index.size(), 50);
  EXPECT_FALSE(index.ivf());
  PromptIndex::ProbeStats stats;
  const std::vector<int64_t> rest = index.Probe(data, dim, 1, &stats);
  EXPECT_TRUE(stats.exact);
  EXPECT_EQ(static_cast<int>(rest.size()), 50);
  EXPECT_EQ(rest.front(), 150);
  EXPECT_EQ(rest.back(), 199);
  EXPECT_EQ(index.Ids(), rest);
}

TEST(PromptIndexTest, InsertReplacesExistingId) {
  const int dim = 4;
  PromptIndex index(IvfOptions(2, 2), DistanceMetric::kEuclidean);
  const std::vector<float> a = {1, 0, 0, 0}, b = {0, 1, 0, 0};
  index.Insert(7, a.data(), dim);
  index.Insert(7, b.data(), dim);
  EXPECT_EQ(index.size(), 1);
  EXPECT_EQ(index.Ids(), (std::vector<int64_t>{7}));
}

// ---- option validation and parsing --------------------------------------

TEST(PromptIndexTest, ValidateRejectsBadOptions) {
  PromptIndexOptions options;
  options.nlist = -1;
  EXPECT_FALSE(ValidateIndexOptions(options).ok());
  options = {};
  options.nprobe = -2;
  EXPECT_FALSE(ValidateIndexOptions(options).ok());
  options = {};
  options.min_points = 0;
  EXPECT_FALSE(ValidateIndexOptions(options).ok());
  options = {};
  options.recall_sample = -1;
  EXPECT_FALSE(ValidateIndexOptions(options).ok());
  EXPECT_TRUE(ValidateIndexOptions(PromptIndexOptions()).ok());
}

TEST(PromptIndexTest, ParseIndexModeRoundTrips) {
  for (IndexMode mode :
       {IndexMode::kExact, IndexMode::kIvf, IndexMode::kAuto}) {
    const StatusOr<IndexMode> parsed = ParseIndexMode(IndexModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(ParseIndexMode("annoy").ok());
}

}  // namespace
}  // namespace gp
