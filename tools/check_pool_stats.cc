// Allocation-regression gate for scripts/check.sh: reads a telemetry
// snapshot (obs/export JSON) and fails unless the tensor buffer pool
// served at least a minimum fraction of hot-path allocations.
//
//   ./tools/check_pool_stats <telemetry.json> [min_hit_rate]
//
// The default threshold of 0.90 pins the pipeline's steady state: after
// the first evaluation episode warms the pool, nearly every forward /
// backward tensor should come from recycled storage. A drop below the
// threshold means someone added an allocation pattern the pool cannot
// serve (odd lifetime, unpooled op, or a PoolScope drain in a hot loop).
//
// Exits 0 when the gate passes, 1 otherwise.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace gp {
namespace {

using json::JsonValue;

// Counter values live under {"counters": {"alloc/pool_hits": N, ...}}.
bool ReadCounter(const JsonValue& root, const std::string& name,
                 double* out) {
  const JsonValue* counters = root.Find("counters");
  if (counters == nullptr || !counters->IsObject()) return false;
  const JsonValue* value = counters->Find(name);
  if (value == nullptr || !value->IsNumber()) return false;
  *out = value->number_value;
  return true;
}

int Run(const std::string& path, double min_hit_rate) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto root_or = json::ParseJson(buffer.str());
  if (!root_or.ok()) {
    std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(),
                 root_or.status().ToString().c_str());
    return 1;
  }

  double hits = 0.0, misses = 0.0;
  if (!ReadCounter(*root_or, "alloc/pool_hits", &hits) ||
      !ReadCounter(*root_or, "alloc/pool_misses", &misses)) {
    std::fprintf(stderr,
                 "%s: missing alloc/pool_hits or alloc/pool_misses counter "
                 "(was the run built with the buffer pool?)\n",
                 path.c_str());
    return 1;
  }
  const double total = hits + misses;
  if (total <= 0.0) {
    std::fprintf(stderr, "%s: pool saw no allocations\n", path.c_str());
    return 1;
  }
  const double hit_rate = hits / total;
  std::printf("%s: pool hit rate %.4f (%.0f hits / %.0f allocations)\n",
              path.c_str(), hit_rate, hits, total);
  if (hit_rate < min_hit_rate) {
    std::fprintf(stderr,
                 "allocation regression: hit rate %.4f below threshold "
                 "%.2f\n",
                 hit_rate, min_hit_rate);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace gp

int main(int argc, char** argv) {
  if (argc < 2 || argc > 3) {
    std::fprintf(stderr, "usage: %s <telemetry.json> [min_hit_rate]\n",
                 argv[0]);
    return 1;
  }
  const double threshold = argc == 3 ? std::atof(argv[2]) : 0.90;
  return gp::Run(argv[1], threshold);
}
