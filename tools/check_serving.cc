// Serving-regression gate for scripts/check.sh: reads the bench_serving
// report (results/BENCH_serving.json) and fails unless
//   - clean-mode p99 latency stays under the budget,
//   - the chaos phase recorded zero cross-tenant degradation events,
//   - the chaos phase recorded zero crashes and zero clean-tenant
//     deadline violations.
//
//   ./tools/check_serving <BENCH_serving.json> [--p99-budget-us=N]
//
// Exits 0 when the gate passes, 1 otherwise.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "util/flags.h"

namespace gp {
namespace {

using json::JsonValue;

// Headline metrics live in {"results": [{"label":..., "value":...}, ...]}.
bool ReadResult(const JsonValue& root, const std::string& label,
                double* out) {
  const JsonValue* results = root.Find("results");
  if (results == nullptr || !results->IsArray()) return false;
  for (const JsonValue& entry : results->elements) {
    if (!entry.IsObject()) continue;
    const JsonValue* entry_label = entry.Find("label");
    const JsonValue* value = entry.Find("value");
    if (entry_label == nullptr || value == nullptr) continue;
    if (entry_label->string_value == label && value->IsNumber()) {
      *out = value->number_value;
      return true;
    }
  }
  return false;
}

int Run(const std::string& path, double p99_budget_us) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "check_serving: cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const auto root_or = json::ParseJson(buffer.str());
  if (!root_or.ok()) {
    std::fprintf(stderr, "check_serving: %s: parse error: %s\n",
                 path.c_str(), root_or.status().ToString().c_str());
    return 1;
  }
  const JsonValue& root = *root_or;

  struct Gate {
    const char* label;
    bool required;
    double value;
    bool present;
  };
  Gate gates[] = {
      {"serve/clean/p99_us", true, 0.0, false},
      {"serve/clean/p50_us", false, 0.0, false},
      {"serve/chaos/cross_tenant_degradation_events", true, 0.0, false},
      {"serve/chaos/crashes", true, 0.0, false},
      {"serve/chaos/clean_tenant_deadline_violations", true, 0.0, false},
  };
  for (Gate& gate : gates) {
    gate.present = ReadResult(root, gate.label, &gate.value);
    if (gate.required && !gate.present) {
      std::fprintf(stderr, "check_serving: %s: missing result '%s'\n",
                   path.c_str(), gate.label);
      return 1;
    }
  }

  bool ok = true;
  const double p99 = gates[0].value;
  std::printf("check_serving: clean p99 %.0fus (budget %.0fus)\n", p99,
              p99_budget_us);
  if (p99 > p99_budget_us) {
    std::fprintf(stderr,
                 "check_serving: FAIL clean p99 %.0fus exceeds budget "
                 "%.0fus\n",
                 p99, p99_budget_us);
    ok = false;
  }
  for (size_t i = 2; i < sizeof(gates) / sizeof(gates[0]); ++i) {
    std::printf("check_serving: %s = %.0f\n", gates[i].label,
                gates[i].value);
    if (gates[i].value != 0.0) {
      std::fprintf(stderr, "check_serving: FAIL %s must be 0, got %.0f\n",
                   gates[i].label, gates[i].value);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gp

int main(int argc, char** argv) {
  gp::Flags flags(argc, argv);
  // Flags ignores positional arguments; the report path is the first
  // argument not starting with "--".
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      path = arg;
      break;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: %s <BENCH_serving.json> [--p99-budget-us=N]\n",
                 argv[0]);
    return 1;
  }
  return gp::Run(path, flags.GetDouble("p99-budget-us", 2000000.0));
}
