// CI gate for the quantized IVF candidate pass: builds a quickstart-scale
// prompt index in quantized mode at the default (auto) nlist/nprobe,
// measures recall@k of probe + exact re-rank against brute force, and
// exits nonzero when recall drops below the threshold. Used by
// scripts/check.sh.
//
//   ./tools/check_recall [--prompts=N] [--dim=D] [--queries=N] [--k=K]
//                        [--threshold=R] [--seed=N]
//                        [--index=... --nlist=... --nprobe=... --rerank=...]
//                        [--simd=off|avx2|auto]
//
// Defaults mirror the quickstart example's retrieval regime: a clusterable
// mixture population large enough for auto mode to shard.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "core/distance.h"
#include "core/prompt_index.h"
#include "tensor/tensor.h"
#include "util/cpuid.h"
#include "util/flags.h"
#include "util/rng.h"

namespace gp {
namespace {

Tensor MixtureEmbeddings(int rows, int dim, int clusters, uint64_t seed) {
  Rng rng(seed);
  Tensor centers = Tensor::Randn(clusters, dim, &rng, 4.0f);
  Tensor out = Tensor::Zeros(rows, dim);
  for (int r = 0; r < rows; ++r) {
    const int c = r % clusters;
    for (int j = 0; j < dim; ++j) {
      out.at(r, j) = centers.at(c, j) + rng.Normal(0.0f, 0.5f);
    }
  }
  return out;
}

std::vector<int64_t> ExactTopK(const Tensor& prompts, const float* query,
                               const std::vector<int64_t>& candidates, int k,
                               DistanceMetric metric) {
  const int dim = prompts.cols();
  std::vector<std::pair<float, int64_t>> scored;
  scored.reserve(candidates.size());
  for (const int64_t id : candidates) {
    const float* row = prompts.data().data() + static_cast<size_t>(id) * dim;
    scored.emplace_back(SimilarityRaw(query, row, dim, metric), id);
  }
  const int kk = std::min<int>(k, static_cast<int>(scored.size()));
  std::partial_sort(scored.begin(), scored.begin() + kk, scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<int64_t> out;
  out.reserve(kk);
  for (int i = 0; i < kk; ++i) out.push_back(scored[i].second);
  return out;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  const int prompts_n = static_cast<int>(flags.GetInt("prompts", 2000));
  const int dim = static_cast<int>(flags.GetInt("dim", 32));
  const int queries_n = static_cast<int>(flags.GetInt("queries", 64));
  const int k = static_cast<int>(flags.GetInt("k", 10));
  const double threshold = flags.GetDouble("threshold", 0.95);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 7));

  const SimdLevel simd = ConfigureSimdFromFlags(flags);
  PromptIndexOptions options = ConfigureIndexFromFlags(flags);
  if (!flags.Has("index")) options.mode = IndexMode::kIvf;
  if (!flags.Has("quantize")) options.quantize = true;

  const int clusters = std::max(4, static_cast<int>(std::sqrt(prompts_n)) / 2);
  const Tensor prompts = MixtureEmbeddings(prompts_n, dim, clusters, seed);
  const Tensor queries = MixtureEmbeddings(queries_n, dim, clusters, seed + 1);
  std::vector<int64_t> all_ids(prompts_n);
  for (int i = 0; i < prompts_n; ++i) all_ids[i] = i;

  bool ok = true;
  for (DistanceMetric metric :
       {DistanceMetric::kCosine, DistanceMetric::kEuclidean}) {
    PromptIndex index(options, metric);
    index.Build(prompts);
    int hit = 0, total = 0;
    for (int q = 0; q < queries_n; ++q) {
      const float* qe = queries.data().data() + static_cast<size_t>(q) * dim;
      const std::vector<int64_t> want =
          ExactTopK(prompts, qe, all_ids, k, metric);
      const std::vector<int64_t> cands = index.Probe(qe, dim, k);
      const std::vector<int64_t> got = ExactTopK(prompts, qe, cands, k, metric);
      const std::set<int64_t> got_set(got.begin(), got.end());
      for (const int64_t id : want) {
        hit += static_cast<int>(got_set.count(id));
      }
      total += static_cast<int>(want.size());
    }
    const double recall = total > 0 ? static_cast<double>(hit) / total : 1.0;
    std::printf(
        "check_recall: metric=%s simd=%s ivf=%d quantized=%d nlist=%d "
        "nprobe=%d recall@%d=%.4f (threshold %.2f)\n",
        DistanceMetricName(metric), SimdLevelName(simd),
        index.ivf() ? 1 : 0, index.quantized() ? 1 : 0, index.nlist(),
        index.nprobe(), k, recall, threshold);
    if (recall < threshold) {
      std::fprintf(stderr, "check_recall: FAIL metric=%s recall %.4f < %.2f\n",
                   DistanceMetricName(metric), recall, threshold);
      ok = false;
    }
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gp

int main(int argc, char** argv) { return gp::Run(argc, argv); }
