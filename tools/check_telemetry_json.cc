// Validates the JSON files the observability subsystem emits. Used by
// scripts/check.sh as a smoke test that the exporters produce well-formed,
// schema-conforming output.
//
//   ./tools/check_telemetry_json <file.json> [<file.json> ...]
//
// Accepted kinds (detected per file):
//   * telemetry snapshot  — {"kind":"telemetry", "counters":{...}, ...}
//   * bench report        — {"benchmark":"<name>", "metrics":[...], ...}
//   * chrome trace        — {"traceEvents":[...], ...}
//
// Exits 0 when every file parses and conforms, 1 otherwise.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"

namespace gp {
namespace {

using json::JsonValue;

bool CheckTelemetrySnapshot(const JsonValue& root, const std::string& path) {
  const JsonValue* kind = root.Find("kind");
  if (kind == nullptr || !kind->IsString() ||
      kind->string_value != "telemetry") {
    std::fprintf(stderr, "%s: \"kind\" is not \"telemetry\"\n", path.c_str());
    return false;
  }
  bool ok = true;
  for (const char* key : {"counters", "gauges"}) {
    const JsonValue* section = root.Find(key);
    if (section == nullptr || !section->IsObject()) {
      std::fprintf(stderr, "%s: missing object \"%s\"\n", path.c_str(), key);
      ok = false;
    }
  }
  for (const char* key : {"histograms", "spans"}) {
    const JsonValue* section = root.Find(key);
    if (section == nullptr || !section->IsArray()) {
      std::fprintf(stderr, "%s: missing array \"%s\"\n", path.c_str(), key);
      ok = false;
    }
  }
  const JsonValue* version = root.Find("schema_version");
  if (version == nullptr || !version->IsNumber()) {
    std::fprintf(stderr, "%s: missing \"schema_version\"\n", path.c_str());
    ok = false;
  }
  return ok;
}

bool CheckBenchReport(const JsonValue& root, const std::string& path) {
  bool ok = true;
  const JsonValue* name = root.Find("benchmark");
  if (name == nullptr || !name->IsString() || name->string_value.empty()) {
    std::fprintf(stderr, "%s: empty \"benchmark\" name\n", path.c_str());
    ok = false;
  }
  const JsonValue* config = root.Find("config");
  if (config == nullptr || !config->IsObject()) {
    std::fprintf(stderr, "%s: missing object \"config\"\n", path.c_str());
    ok = false;
  }
  for (const char* key : {"stages", "results"}) {
    const JsonValue* section = root.Find(key);
    if (section == nullptr || !section->IsArray()) {
      std::fprintf(stderr, "%s: missing array \"%s\"\n", path.c_str(), key);
      return false;
    }
  }
  for (const JsonValue& metric : root.Find("results")->elements) {
    const JsonValue* label = metric.Find("label");
    const JsonValue* value = metric.Find("value");
    if (label == nullptr || !label->IsString() || value == nullptr ||
        !value->IsNumber()) {
      std::fprintf(stderr, "%s: malformed result entry\n", path.c_str());
      ok = false;
      break;
    }
  }
  const JsonValue* counters = root.Find("counters");
  if (counters == nullptr || !counters->IsObject()) {
    std::fprintf(stderr, "%s: missing object \"counters\"\n", path.c_str());
    ok = false;
  }
  return ok;
}

bool CheckChromeTrace(const JsonValue& root, const std::string& path) {
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->IsArray()) {
    std::fprintf(stderr, "%s: missing array \"traceEvents\"\n", path.c_str());
    return false;
  }
  for (const JsonValue& event : events->elements) {
    const JsonValue* name = event.Find("name");
    const JsonValue* ts = event.Find("ts");
    if (name == nullptr || !name->IsString() || ts == nullptr ||
        !ts->IsNumber()) {
      std::fprintf(stderr, "%s: malformed trace event\n", path.c_str());
      return false;
    }
  }
  return true;
}

bool CheckFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  const auto root_or = json::ParseJson(buffer.str());
  if (!root_or.ok()) {
    std::fprintf(stderr, "%s: parse error: %s\n", path.c_str(),
                 root_or.status().ToString().c_str());
    return false;
  }
  const JsonValue& root = *root_or;
  if (!root.IsObject()) {
    std::fprintf(stderr, "%s: top level is not an object\n", path.c_str());
    return false;
  }

  bool ok = false;
  const char* detected = nullptr;
  if (root.Find("traceEvents") != nullptr) {
    detected = "chrome-trace";
    ok = CheckChromeTrace(root, path);
  } else if (root.Find("benchmark") != nullptr) {
    detected = "bench-report";
    ok = CheckBenchReport(root, path);
  } else if (root.Find("kind") != nullptr) {
    detected = "telemetry";
    ok = CheckTelemetrySnapshot(root, path);
  } else {
    std::fprintf(stderr, "%s: unrecognized schema\n", path.c_str());
    return false;
  }
  if (ok) std::printf("%s: ok (%s)\n", path.c_str(), detected);
  return ok;
}

}  // namespace
}  // namespace gp

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.json> [<file.json> ...]\n", argv[0]);
    return 1;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    if (!gp::CheckFile(argv[i])) all_ok = false;
  }
  return all_ok ? 0 : 1;
}
