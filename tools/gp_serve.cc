// gp_serve — the long-lived multi-tenant prompt-serving daemon.
//
// Loads a GraphPrompter model (optionally from an integrity-checked
// checkpoint) over a named synthetic dataset and serves EvaluateInContext
// requests over the framed binary protocol (src/serve).
//
//   # socket mode (daemon): serve until SIGTERM, then drain gracefully
//   ./tools/gp_serve --socket=/tmp/gp.sock [--workers=2] [--queue=16]
//
//   # pipe mode: frames on stdin/stdout, single-threaded, deterministic
//   ./tools/gp_serve --pipe < requests.bin > responses.bin
//
// Common flags:
//   --checkpoint=PATH    load model weights (CRC-verified; a corrupted or
//                        truncated file exits 1 with a typed error)
//   --dataset=NAME       arxiv|mag|wiki|concept|fb15k|nell  (default arxiv)
//   --scale=X            dataset scale (default 0.25)
//   --seed=N             model/server seed (default 1)
//   --deadline-us=N      default per-request budget (default 250000)
//   --retries=N          transient-failure retries per request (default 2)
//   --pretrain-steps=N   pretrain when no checkpoint is given (default 0)
//   --telemetry=PATH     write a telemetry snapshot on exit
//
// SIGTERM/SIGINT start a graceful drain: in-flight requests finish, the
// telemetry export is flushed, and the process exits 0.

#include <signal.h>

#include <cstdio>
#include <string>

#include "core/graph_prompter.h"
#include "core/pretrain.h"
#include "core/prompt_index.h"
#include "data/datasets.h"
#include "nn/serialize.h"
#include "obs/export.h"
#include "serve/byte_stream.h"
#include "serve/server.h"
#include "util/cpuid.h"
#include "util/flags.h"

namespace gp {
namespace {

PromptServer* g_server = nullptr;

void HandleTermination(int) {
  // Async-signal-safe: RequestDrain is one pipe write.
  if (g_server != nullptr) g_server->RequestDrain();
}

DatasetBundle MakeNamedDataset(const std::string& name, double scale,
                               uint64_t seed) {
  if (name == "mag") return MakeMagSim(scale, seed);
  if (name == "wiki") return MakeWikiSim(scale, seed);
  if (name == "concept") return MakeConceptNetSim(scale, seed);
  if (name == "fb15k") return MakeFb15kSim(scale, seed);
  if (name == "nell") return MakeNellSim(scale, seed);
  return MakeArxivSim(scale, seed);
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  ConfigureIndexFromFlags(flags);
  ConfigureSimdFromFlags(flags);
  ConfigureObservability(flags.GetString("telemetry", ""),
                         flags.GetString("trace", ""));

  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  const DatasetBundle dataset =
      MakeNamedDataset(flags.GetString("dataset", "arxiv"),
                       flags.GetDouble("scale", 0.25), seed + 1);

  GraphPrompterConfig config =
      FullGraphPrompterConfig(dataset.graph.feature_dim(), seed);
  config.embedding_dim = static_cast<int>(flags.GetInt("embedding-dim", 32));
  GraphPrompterModel model(config);

  const std::string checkpoint = flags.GetString("checkpoint", "");
  if (!checkpoint.empty()) {
    // Integrity-checked load: truncation and corruption surface as typed
    // kDataLoss/kInvalidArgument errors, never as silently garbage weights.
    const Status status = LoadModule(&model, checkpoint);
    if (!status.ok()) {
      std::fprintf(stderr, "gp_serve: cannot load checkpoint %s: %s\n",
                   checkpoint.c_str(), status.ToString().c_str());
      return 1;
    }
    std::printf("gp_serve: loaded checkpoint %s\n", checkpoint.c_str());
  } else {
    const int steps = static_cast<int>(flags.GetInt("pretrain-steps", 0));
    if (steps > 0) {
      PretrainConfig pretrain;
      pretrain.steps = steps;
      pretrain.ways = 3;
      Pretrain(&model, dataset, pretrain);
      std::printf("gp_serve: pretrained %d steps (no checkpoint given)\n",
                  steps);
    }
  }

  ServeConfig sc;
  sc.workers = static_cast<int>(flags.GetInt("workers", 2));
  sc.queue_capacity = static_cast<int>(flags.GetInt("queue", 16));
  sc.default_deadline_us = flags.GetInt("deadline-us", 250000);
  sc.max_retries = static_cast<int>(flags.GetInt("retries", 2));
  sc.seed = seed;
  PromptServer server(&model, &dataset, sc);
  g_server = &server;
  ::signal(SIGTERM, HandleTermination);
  ::signal(SIGINT, HandleTermination);

  Status serve_status;
  if (flags.GetBool("pipe", false)) {
    FdStream in(0);
    FdStream out(1);
    serve_status = server.ServePipe(&in, &out);
  } else {
    const std::string socket_path =
        flags.GetString("socket", "/tmp/gp_serve.sock");
    serve_status = server.ServeUnixSocket(socket_path);
  }
  g_server = nullptr;

  for (const auto& tenant : server.SnapshotTenants()) {
    std::fprintf(stderr,
                 "gp_serve: tenant %s requests=%lld degradation=%lld "
                 "trips=%lld safe_mode=%lld\n",
                 tenant.name.c_str(),
                 static_cast<long long>(tenant.requests),
                 static_cast<long long>(tenant.degradation_events),
                 static_cast<long long>(tenant.breaker_trips),
                 static_cast<long long>(tenant.safe_mode_requests));
  }
  const Status export_status = ExportConfiguredObservability();
  if (!export_status.ok()) {
    std::fprintf(stderr, "gp_serve: telemetry export failed: %s\n",
                 export_status.ToString().c_str());
  }
  if (!serve_status.ok()) {
    std::fprintf(stderr, "gp_serve: serving ended with error: %s\n",
                 serve_status.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace gp

int main(int argc, char** argv) { return gp::Run(argc, argv); }
