#!/usr/bin/env bash
# Line-coverage report for the core library (src/core), driven by the full
# test suite. Builds an instrumented tree in build-cov/, runs ctest, then
# summarizes with gcovr when available and falls back to plain gcov (always
# shipped with gcc) otherwise — no extra dependencies required.
#
# Usage: scripts/coverage.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"

JOBS="$(nproc 2>/dev/null || echo 4)"
if [[ "${1:-}" == "-j" && -n "${2:-}" ]]; then
  JOBS="$2"
fi

BUILD=build-cov

echo "=== building instrumented tree in $BUILD/ ==="
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS=--coverage -DCMAKE_EXE_LINKER_FLAGS=--coverage
cmake --build "$BUILD" -j "$JOBS"

echo "=== running test suite to collect counters ==="
# Stale counters from a previous run would mix executions; start clean.
find "$BUILD" -name '*.gcda' -delete
ctest --test-dir "$BUILD" --output-on-failure

if command -v gcovr >/dev/null 2>&1; then
  echo "=== gcovr: line coverage for src/core ==="
  gcovr --root "$ROOT" --filter 'src/core/' "$BUILD"
  exit 0
fi

echo "=== gcov fallback: line coverage for src/core ==="
# gcov prints, per translation unit, pairs of lines:
#   File '<path>'
#   Lines executed:<pct>% of <count>
# Collect them for every gp_core object and keep the src/core entries.
# Headers show up once per including TU; keep the max-coverage sighting.
gcda_list="$(find "$BUILD/src" -name '*.gcda' | sort)"
if [[ -z "$gcda_list" ]]; then
  echo "no .gcda files under $BUILD/src — did the tests run?" >&2
  exit 1
fi

# shellcheck disable=SC2086
gcov -n $gcda_list 2>/dev/null | awk -v root="$ROOT/" '
  /^File / {
    file = $0
    sub(/^File .?/, "", file); sub(/.$/, "", file)
    sub(root, "", file)
    next
  }
  /^Lines executed:/ && file ~ /(^|\/)src\/core\// {
    pct = $0; sub(/^Lines executed:/, "", pct); sub(/% of.*/, "", pct)
    n = $0; sub(/.*% of /, "", n)
    if (pct + 0 > best[file] || !(file in lines)) {
      best[file] = pct + 0
      lines[file] = n + 0
    }
    file = ""
  }
  END {
    if (length(best) == 0) {
      print "no src/core coverage records found" > "/dev/stderr"
      exit 1
    }
    printf "%-40s %10s %8s\n", "file", "lines", "cover"
    total = 0; covered = 0
    nfiles = 0
    for (f in best) order[++nfiles] = f
    for (i = 2; i <= nfiles; ++i) {  # insertion sort: mawk has no asorti
      f = order[i]
      for (j = i - 1; j >= 1 && order[j] > f; --j) order[j + 1] = order[j]
      order[j + 1] = f
    }
    for (i = 1; i <= nfiles; ++i) {
      f = order[i]
      printf "%-40s %10d %7.1f%%\n", f, lines[f], best[f]
      total += lines[f]
      covered += lines[f] * best[f] / 100.0
    }
    printf "%-40s %10d %7.1f%%\n", "TOTAL (src/core)", total,
           (total > 0 ? 100.0 * covered / total : 0.0)
  }'
