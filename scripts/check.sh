#!/usr/bin/env bash
# Full verification sweep: tier-1 build + tests, then the robustness suite
# under AddressSanitizer and UndefinedBehaviorSanitizer. The sanitizer
# passes focus on the `robustness` ctest label, where fault injection
# deliberately pushes NaN/Inf values and corrupted bytes through the
# pipeline, but can run everything with CHECK_ALL=1.
#
# Usage: scripts/check.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
if [[ "${1:-}" == "-j" && -n "${2:-}" ]]; then
  JOBS="$2"
fi

run() {
  echo "+ $*"
  "$@"
}

echo "=== tier-1: default build + full test suite (scalar + simd) ==="
run cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
run cmake --build build -j "$JOBS"
# Twice: GP_SIMD=off pins the bitwise scalar reference, GP_SIMD=auto runs
# the dispatched AVX2 kernels (a no-op second run on CPUs without AVX2).
run env GP_SIMD=off ctest --test-dir build --output-on-failure
run env GP_SIMD=auto ctest --test-dir build --output-on-failure

echo "=== observability: labeled tests + telemetry smoke ==="
run ctest --test-dir build -L observability --output-on-failure
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
run ./build/examples/quickstart --steps=10 \
  --telemetry="$smoke_dir/telemetry.json" --trace="$smoke_dir/trace.json"
run ./build/tools/check_telemetry_json "$smoke_dir/telemetry.json" \
  "$smoke_dir/trace.json"

echo "=== alloc: buffer-pool hit-rate gate ==="
run ./build/tools/check_pool_stats "$smoke_dir/telemetry.json" 0.90

echo "=== perf: bench smoke tests ==="
run ctest --test-dir build -L perf --output-on-failure

echo "=== serving: chaos soak smoke + isolation gate ==="
# Smoke-scale run of the serving bench (clean latency phase + 4-tenant
# chaos phase with one faulted tenant), then the gate: clean p99 within
# budget, zero cross-tenant degradation bleed, zero crashes, zero
# clean-tenant deadline violations. The full-scale soak is
# ./build/bench/bench_serving with defaults (>= 10k chaos requests).
# The socket-mode concurrency test itself runs under TSan below via the
# `concurrency` label.
run ./build/bench/bench_serving --scale=0.2 --steps=5 --tenants=4 \
  --clean-requests=48 --serve-requests=64 --outdir="$smoke_dir/serving"
run ./build/tools/check_serving "$smoke_dir/serving/BENCH_serving.json"

echo "=== index: IVF property tests + golden regressions ==="
run ctest --test-dir build -L index --output-on-failure

echo "=== index: quantized-candidate recall gate ==="
# Quickstart-scale index, quantized mode, default (auto) nprobe; fails
# below 0.95 recall@10 against brute force.
run ./build/tools/check_recall --threshold=0.95

echo "=== fuzz: malformed-input parser tests ==="
run ctest --test-dir build -L fuzz --output-on-failure

# `index` rides along so the sanitizers cover the quantized candidate
# pass (uint8 code arithmetic, sidecar insert/erase bookkeeping).
label_args=(-L 'robustness|fuzz|index')
if [[ "${CHECK_ALL:-0}" == "1" ]]; then
  label_args=()
fi

echo "=== ASan: address-sanitized robustness tests ==="
run cmake -B build-asan -S . -DGP_SANITIZE=address
run cmake --build build-asan -j "$JOBS"
run ctest --test-dir build-asan "${label_args[@]}" --output-on-failure

echo "=== UBSan: undefined-behavior-sanitized robustness tests ==="
run cmake -B build-ubsan -S . -DGP_SANITIZE=undefined
run cmake --build build-ubsan -j "$JOBS"
run ctest --test-dir build-ubsan "${label_args[@]}" --output-on-failure

echo "=== TSan: thread-sanitized concurrency tests ==="
run cmake -B build-tsan -S . -DGP_SANITIZE=thread
run cmake --build build-tsan -j "$JOBS"
run ctest --test-dir build-tsan -L concurrency --output-on-failure

echo "all checks passed"
