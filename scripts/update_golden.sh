#!/usr/bin/env bash
# Regenerates the pinned golden files in tests/golden/ from the current
# pipeline, then re-runs the golden tests to confirm the new files match.
#
# Only run this after an INTENTIONAL numeric change to retrieval/scoring;
# the regenerated files are part of the PR and the diff must be reviewed.
# An unintentional diff here means the exact path stopped being exact.
#
# Usage: scripts/update_golden.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"
if [[ "${1:-}" == "-j" && -n "${2:-}" ]]; then
  JOBS="$2"
fi

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j "$JOBS" --target golden_eval_test

echo "=== regenerating tests/golden/ ==="
GP_UPDATE_GOLDEN=1 ./build/tests/golden_eval_test

echo "=== verifying the regenerated goldens ==="
./build/tests/golden_eval_test

echo "done — review 'git diff tests/golden/' before committing"
